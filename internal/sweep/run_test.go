package sweep

import (
	"testing"

	"dismem"
)

func TestCellRunBasic(t *testing.T) {
	o := Options{Jobs: 150, Seeds: 2}
	agg, err := Cell{Policy: "memaware"}.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Reports) != 2 {
		t.Fatalf("%d reports for 2 seeds", len(agg.Reports))
	}
	if agg.StoppedRuns != 0 {
		t.Fatalf("%d stopped runs without a StopWhen predicate", agg.StoppedRuns)
	}
	if agg.Jobs == 0 {
		t.Fatal("no jobs aggregated")
	}
}

func TestCellStopWhenAborts(t *testing.T) {
	o := Options{Jobs: 400, Seeds: 2}
	full, err := Cell{Policy: "memaware"}.Run(o)
	if err != nil {
		t.Fatal(err)
	}

	// Abort every seed at the first sample past one simulated day; the
	// workload spans much longer, so the truncation must bite.
	const cutoff = 24 * 3600
	cut, err := Cell{
		Policy:      "memaware",
		StopWhen:    func(s dismem.Sample) bool { return s.Now >= cutoff },
		SampleEvery: 3600,
	}.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if cut.StoppedRuns != o.Seeds {
		t.Fatalf("%d of %d seeds stopped", cut.StoppedRuns, o.Seeds)
	}
	if cut.Jobs >= full.Jobs {
		t.Fatalf("aborted runs recorded %.0f jobs, full runs %.0f", cut.Jobs, full.Jobs)
	}
	for _, r := range cut.Reports {
		if r.MakespanSec > cutoff+3600 {
			t.Fatalf("aborted run simulated to %d s, cutoff %d", r.MakespanSec, cutoff)
		}
	}
}

func TestCellSpecPolicy(t *testing.T) {
	// Cells accept spec strings wherever a policy name goes: the fan-out
	// path the grammar exists for.
	o := Options{Jobs: 120, Seeds: 1}
	agg, err := Cell{Policy: "order=sjf backfill=easy placer=memaware cap=2"}.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Jobs == 0 {
		t.Fatal("no jobs ran under a spec-string policy")
	}
}
