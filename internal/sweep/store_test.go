package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dismem"
	"dismem/internal/metrics"
	"dismem/internal/runstore"
)

// TestCellArchivesToStore: a sweep with a store attached archives one
// record per (cell, seed), in seed order, and the archived content is
// identical whether the sweep ran serially or on four workers.
func TestCellArchivesToStore(t *testing.T) {
	cell := Cell{Policy: "memaware"}
	runWith := func(workers int) []runstore.Run {
		t.Helper()
		store, err := runstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if _, err := cell.Run(Options{Jobs: 150, Seeds: 3, Workers: workers, Store: store}); err != nil {
			t.Fatal(err)
		}
		return store.Runs()
	}

	serial := runWith(1)
	parallel := runWith(4)
	if len(serial) != 3 {
		t.Fatalf("archived %d runs for 3 seeds, want 3", len(serial))
	}
	if len(parallel) != len(serial) {
		t.Fatalf("worker count changed the archive: %d vs %d runs", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("record %d: id %s serial, %s with 4 workers", i, serial[i].ID, parallel[i].ID)
		}
		if serial[i].Seed != i || serial[i].Kind != "sweep-unit" {
			t.Fatalf("record %d malformed: %+v", i, serial[i])
		}
		if *serial[i].Report != *parallel[i].Report {
			t.Fatalf("record %d: report differs across worker counts", i)
		}
	}
}

// TestCellStoreIdempotentAcrossResume: re-running the same sweep over
// the same store (the resume path) leaves the archive unchanged.
func TestCellStoreIdempotentAcrossResume(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Policy: "memaware"}
	for i := 0; i < 2; i++ {
		store, err := runstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cell.Run(Options{Jobs: 120, Seeds: 2, Store: store}); err != nil {
			t.Fatal(err)
		}
		store.Close()
	}
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 2 {
		t.Fatalf("archive holds %d runs after two identical sweeps, want 2", store.Len())
	}
}

// TestCellSeriesUncacheable: a Series sink factory is live code — the
// cell's units are neither journaled nor archived.
func TestCellSeriesUncacheable(t *testing.T) {
	cell := Cell{Policy: "memaware", Series: func(int) metrics.SeriesSink { return dismem.DiscardSeries }}
	if _, err := cell.unitKey(Options{}.withDefaults(), dismem.DefaultMachine(), 0); err == nil {
		t.Fatal("unitKey cached a cell holding a live series sink")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := cell.Run(Options{Jobs: 120, Seeds: 1, Store: store, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("live-code cell archived %d runs, want 0", store.Len())
	}
}

// TestCellSeriesAcrossWorkers: per-seed series files are bit-identical
// between a serial sweep and a 4-worker one — the worker pool cannot
// leak into a seed's sampled timeline.
func TestCellSeriesAcrossWorkers(t *testing.T) {
	write := func(workers int) map[int][]byte {
		t.Helper()
		dir := t.TempDir()
		cell := Cell{
			Policy:      "memaware",
			SampleEvery: 1800,
			Series: func(seed int) metrics.SeriesSink {
				f, err := os.Create(filepath.Join(dir, fmt.Sprintf("seed-%d.jsonl", seed)))
				if err != nil {
					t.Fatal(err)
				}
				return &closingSink{SeriesSink: metrics.NewJSONLSeriesSink(f), f: f}
			},
		}
		if _, err := cell.Run(Options{Jobs: 200, Seeds: 3, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		out := make(map[int][]byte)
		for seed := 0; seed < 3; seed++ {
			b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("seed-%d.jsonl", seed)))
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatalf("seed %d wrote an empty series", seed)
			}
			out[seed] = b
		}
		return out
	}

	serial := write(1)
	parallel := write(4)
	for seed := 0; seed < 3; seed++ {
		if !bytes.Equal(serial[seed], parallel[seed]) {
			t.Fatalf("seed %d series differs between serial and 4-worker sweeps", seed)
		}
	}
}

// closingSink closes its file once the engine closes the sink, so the
// bytes are on disk when the sweep returns.
type closingSink struct {
	metrics.SeriesSink
	f *os.File
}

func (c *closingSink) Close() error {
	err := c.SeriesSink.Close()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}
