// Package sweep is the experiment harness: it regenerates every table
// and figure of the paper's evaluation as parameter sweeps over the
// simulator, fanning independent (policy, seed, sweep-point) cells out
// across CPUs. Figures are emitted as series tables (one row per X
// value, one column per curve) suitable for plotting or diffing.
package sweep

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid with named
// columns. Figures are tables whose first column is the X axis.
type Table struct {
	ID    string // experiment id, e.g. "fig2"
	Title string
	Note  string // provenance: workload scale, seeds, model
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("sweep: table %s: row has %d cells, want %d", t.ID, len(cells), len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	quote := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quote(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f0, f1, f2 format floats with 0/1/2 decimals; fp formats a fraction
// as a percentage.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fp(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
