package sweep

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:    "t1",
		Title: "sample",
		Note:  "note here",
		Cols:  []string{"name", "value"},
	}
	t.AddRow("alpha", "1.5")
	t.AddRow("beta, with comma", "2.0")
	return t
}

func TestTableString(t *testing.T) {
	out := sampleTable().String()
	for _, want := range []string{"t1", "sample", "note here", "name", "alpha", "1.5", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	out := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"beta, with comma"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
}

func TestTableCSVQuotesQuotes(t *testing.T) {
	tb := &Table{ID: "q", Title: "q", Cols: []string{"a"}}
	tb.AddRow(`say "hi"`)
	if want := `"say ""hi"""`; !strings.Contains(tb.CSV(), want) {
		t.Fatalf("quote escaping wrong: %q", tb.CSV())
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row arity did not panic")
		}
	}()
	tb := &Table{ID: "x", Cols: []string{"a", "b"}}
	tb.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if f0(3.7) != "4" || f1(3.75) != "3.8" || f2(3.14159) != "3.14" {
		t.Fatalf("float formatters: %s %s %s", f0(3.7), f1(3.75), f2(3.14159))
	}
	if fp(0.123) != "12.3%" {
		t.Fatalf("fp(0.123) = %s", fp(0.123))
	}
}
