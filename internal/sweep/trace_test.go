package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dismem"
	"dismem/internal/runstore"
	"dismem/internal/trace"
)

// TestCellTraceUncacheable: a Trace sink factory is live code — the
// cell's units are neither journaled nor archived.
func TestCellTraceUncacheable(t *testing.T) {
	cell := Cell{Policy: "memaware", Trace: func(int) trace.TraceSink { return dismem.DiscardTrace }}
	if _, err := cell.unitKey(Options{}.withDefaults(), dismem.DefaultMachine(), 0); err == nil {
		t.Fatal("unitKey cached a cell holding a live trace sink")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := cell.Run(Options{Jobs: 120, Seeds: 1, Store: store, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("live-code cell archived %d runs, want 0", store.Len())
	}
}

// closingTraceSink closes its file once the engine closes the sink, so
// the bytes are on disk when the sweep returns.
type closingTraceSink struct {
	trace.TraceSink
	f *os.File
}

func (c *closingTraceSink) Close() error {
	err := c.TraceSink.Close()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// TestCellTraceAcrossWorkers: per-seed trace files are bit-identical
// between a serial sweep and a 4-worker one, with no SampleEvery set —
// tracing is event-driven and must not depend on the sampling tick
// chain or the worker pool.
func TestCellTraceAcrossWorkers(t *testing.T) {
	write := func(workers int) map[int][]byte {
		t.Helper()
		dir := t.TempDir()
		cell := Cell{
			Policy: "memaware",
			Trace: func(seed int) trace.TraceSink {
				f, err := os.Create(filepath.Join(dir, fmt.Sprintf("seed-%d.jsonl", seed)))
				if err != nil {
					t.Fatal(err)
				}
				return &closingTraceSink{TraceSink: trace.NewJSONLSink(f), f: f}
			},
		}
		if _, err := cell.Run(Options{Jobs: 200, Seeds: 3, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		out := make(map[int][]byte)
		for seed := 0; seed < 3; seed++ {
			b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("seed-%d.jsonl", seed)))
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatalf("seed %d wrote an empty trace", seed)
			}
			out[seed] = b
		}
		return out
	}

	serial := write(1)
	parallel := write(4)
	for seed := 0; seed < 3; seed++ {
		if !bytes.Equal(serial[seed], parallel[seed]) {
			t.Fatalf("seed %d trace differs between serial and 4-worker sweeps", seed)
		}
	}
}
