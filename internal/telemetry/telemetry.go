// Package telemetry is a dependency-free Prometheus-text-exposition
// layer: a Metric model, a deterministic writer for the text format
// (version 0.0.4), an HTTP handler that serves it, a mutex-guarded
// GaugeSet for live simulation gauges, and an expvar bridge so the
// counters long-running daemons already publish scrape without new
// bookkeeping. A hand-written format validator (validate.go) backs the
// tests and the CI metrics smoke; nothing here imports anything beyond
// the standard library.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type is a metric's exposition type.
type Type string

// The exposition types this layer emits.
const (
	Gauge   Type = "gauge"
	Counter Type = "counter"
)

// Metric is one sample: a name, its metadata and an optional label
// set. Metrics sharing a name must share Type and Help (the writer
// emits the first occurrence's metadata and rejects disagreement).
type Metric struct {
	Name   string
	Help   string
	Type   Type
	Labels map[string]string
	Value  float64
}

// Source supplies a snapshot of metrics per scrape.
type Source interface {
	Metrics() []Metric
}

// SourceFunc adapts a function to Source.
type SourceFunc func() []Metric

// Metrics implements Source.
func (f SourceFunc) Metrics() []Metric { return f() }

// validName reports whether s matches the exposition-format name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* (':' is reserved for recording
// rules by convention, but legal).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName is validName without ':'.
func validLabelName(s string) bool {
	return validName(s) && !strings.ContainsRune(s, ':')
}

// SanitizeName maps an arbitrary string onto the name grammar:
// every illegal rune becomes '_', and a leading digit gets a '_'
// prefix. Used by the expvar bridge, whose keys are free-form.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelSignature renders a metric's label set canonically (sorted by
// label name); empty for an unlabelled metric.
func labelSignature(labels map[string]string) (string, error) {
	if len(labels) == 0 {
		return "", nil
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		if !validLabelName(n) {
			return "", fmt.Errorf("telemetry: invalid label name %q", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(labels[n]))
	}
	b.WriteByte('}')
	return b.String(), nil
}

// formatValue renders a sample value the way the exposition format
// expects: Go 'g' shortest form, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "+Inf", "-Inf", "NaN":
		return s
	}
	return s
}

// WriteExposition renders metrics in the text exposition format,
// deterministically: families sorted by name, samples within a family
// sorted by label signature, HELP/TYPE emitted once per family. Two
// scrapes over equal inputs are byte-identical — the property the CI
// smoke diffs. Metrics with invalid names, conflicting metadata within
// a family, or duplicate (name, labels) pairs are errors.
func WriteExposition(w io.Writer, metrics []Metric) error {
	byName := make(map[string][]Metric)
	names := make([]string, 0, len(metrics))
	for _, m := range metrics {
		if !validName(m.Name) {
			return fmt.Errorf("telemetry: invalid metric name %q", m.Name)
		}
		if m.Type != Gauge && m.Type != Counter {
			return fmt.Errorf("telemetry: metric %s has unknown type %q", m.Name, m.Type)
		}
		if _, seen := byName[m.Name]; !seen {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := byName[name]
		for _, m := range fam[1:] {
			if m.Type != fam[0].Type || m.Help != fam[0].Help {
				return fmt.Errorf("telemetry: metric family %s has conflicting metadata", name)
			}
		}
		if fam[0].Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(fam[0].Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].Type); err != nil {
			return err
		}
		type row struct{ sig, line string }
		rows := make([]row, 0, len(fam))
		seen := make(map[string]bool, len(fam))
		for _, m := range fam {
			sig, err := labelSignature(m.Labels)
			if err != nil {
				return err
			}
			if seen[sig] {
				return fmt.Errorf("telemetry: duplicate sample %s%s", name, sig)
			}
			seen[sig] = true
			rows = append(rows, row{sig, fmt.Sprintf("%s%s %s\n", name, sig, formatValue(m.Value))})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].sig < rows[j].sig })
		for _, r := range rows {
			if _, err := io.WriteString(w, r.line); err != nil {
				return err
			}
		}
	}
	return nil
}

// ContentType is the exposition-format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves GET /metrics over the given sources: each scrape
// snapshots every source in order and renders one exposition document.
// A source error is a 500 with the error text — a scrape must never
// silently serve a partial document.
func Handler(sources ...Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var all []Metric
		for _, s := range sources {
			all = append(all, s.Metrics()...)
		}
		var b strings.Builder
		if err := WriteExposition(&b, all); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		io.WriteString(w, b.String())
	})
}

// GaugeSet is a concurrency-safe collection of gauges keyed by (name,
// label signature): the bridge between a single-goroutine simulation
// loop publishing live Sample values and concurrent scrapes reading
// them. The zero value is not usable; call NewGaugeSet.
type GaugeSet struct {
	mu     sync.Mutex
	order  []string
	gauges map[string]Metric
}

// NewGaugeSet returns an empty gauge set.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{gauges: make(map[string]Metric)}
}

// Set records the current value of the gauge (name, labels), creating
// it on first use. Labels are copied.
func (g *GaugeSet) Set(name, help string, labels map[string]string, v float64) {
	sig, err := labelSignature(labels)
	if err != nil {
		sig = fmt.Sprintf("!%v", labels) // invalid labels still key uniquely; WriteExposition rejects them loudly
	}
	var lcopy map[string]string
	if len(labels) > 0 {
		lcopy = make(map[string]string, len(labels))
		for k, val := range labels {
			lcopy[k] = val
		}
	}
	key := name + sig
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.gauges[key]; !ok {
		g.order = append(g.order, key)
	}
	g.gauges[key] = Metric{Name: name, Help: help, Type: Gauge, Labels: lcopy, Value: v}
}

// Metrics implements Source: a consistent snapshot of every gauge.
func (g *GaugeSet) Metrics() []Metric {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Metric, 0, len(g.order))
	for _, key := range g.order {
		out = append(out, g.gauges[key])
	}
	return out
}

// ExpvarSource bridges an expvar.Map into the exposition document:
// every expvar.Int in the map becomes a counter named
// <prefix>_<sanitized key>. Non-Int vars are skipped (the maps the
// daemons publish hold only Ints; a histogram would need its own
// Source). Values are read per scrape, so the bridge needs no
// registration hooks.
func ExpvarSource(prefix string, m *expvar.Map) Source {
	return SourceFunc(func() []Metric {
		var out []Metric
		m.Do(func(kv expvar.KeyValue) {
			iv, ok := kv.Value.(*expvar.Int)
			if !ok {
				return
			}
			out = append(out, Metric{
				Name:  SanitizeName(prefix + "_" + kv.Key),
				Help:  "expvar counter " + kv.Key,
				Type:  Counter,
				Value: float64(iv.Value()),
			})
		})
		return out
	})
}
