package telemetry

import (
	"expvar"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleMetrics() []Metric {
	return []Metric{
		{Name: "dismem_queue_depth", Help: "jobs waiting", Type: Gauge, Value: 12},
		{Name: "dismem_pool_used_mib", Help: "pool usage", Type: Gauge,
			Labels: map[string]string{"pool": "0"}, Value: 4096},
		{Name: "dismem_pool_used_mib", Help: "pool usage", Type: Gauge,
			Labels: map[string]string{"pool": "1"}, Value: 512.5},
		{Name: "dismem_events_total", Help: "DES events fired", Type: Counter, Value: 1e6},
	}
}

// TestWriteExpositionRoundTrip: everything the writer emits must pass
// the validator, and two renders of equal input are byte-identical.
func TestWriteExpositionRoundTrip(t *testing.T) {
	var a, b strings.Builder
	if err := WriteExposition(&a, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	if err := WriteExposition(&b, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
	n, err := Validate(strings.NewReader(a.String()))
	if err != nil {
		t.Fatalf("writer output fails validation: %v\n%s", err, a.String())
	}
	if n != 4 {
		t.Fatalf("validated %d samples, want 4", n)
	}
	if !strings.Contains(a.String(), `dismem_pool_used_mib{pool="0"} 4096`) {
		t.Fatalf("missing labelled sample:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "# TYPE dismem_events_total counter\n") {
		t.Fatalf("missing TYPE line:\n%s", a.String())
	}
}

// TestWriteExpositionEscaping: label values and help text with quotes,
// backslashes and newlines survive a write+validate cycle.
func TestWriteExpositionEscaping(t *testing.T) {
	ms := []Metric{{
		Name: "weird", Help: "line1\nline2 \\ backslash", Type: Gauge,
		Labels: map[string]string{"path": `C:\dir "quoted"` + "\nnl"}, Value: 1,
	}}
	var b strings.Builder
	if err := WriteExposition(&b, ms); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(strings.NewReader(b.String())); err != nil {
		t.Fatalf("escaped output fails validation: %v\n%q", err, b.String())
	}
	if !strings.Contains(b.String(), `\n`) || strings.Count(b.String(), "\n") != 3 {
		t.Fatalf("newlines not escaped:\n%q", b.String())
	}
}

// TestWriteExpositionRejects: the writer refuses documents a scraper
// would choke on.
func TestWriteExpositionRejects(t *testing.T) {
	cases := map[string][]Metric{
		"bad name":     {{Name: "1bad", Type: Gauge}},
		"bad type":     {{Name: "ok", Type: "sommaire"}},
		"bad label":    {{Name: "ok", Type: Gauge, Labels: map[string]string{"0bad": "x"}}},
		"metadata war": {{Name: "ok", Type: Gauge}, {Name: "ok", Type: Counter}},
		"dup sample":   {{Name: "ok", Type: Gauge, Value: 1}, {Name: "ok", Type: Gauge, Value: 2}},
	}
	for label, ms := range cases {
		var b strings.Builder
		if err := WriteExposition(&b, ms); err == nil {
			t.Errorf("%s: accepted\n%s", label, b.String())
		}
	}
}

// TestValidateRejects: hand-broken documents each produce an error.
func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad name":         "1bad 1\n",
		"bad value":        "ok one\n",
		"unclosed labels":  "ok{a=\"x\" 1\n",
		"bad escape":       "ok{a=\"\\x\"} 1\n",
		"dup sample":       "ok 1\nok 1\n",
		"type after":       "ok 1\n# TYPE ok gauge\n",
		"dup type":         "# TYPE ok gauge\n# TYPE ok gauge\nok 1\n",
		"unknown type":     "# TYPE ok banana\nok 1\n",
		"split family":     "a 1\nb 1\na{l=\"x\"} 1\n",
		"dup label":        "ok{a=\"x\",a=\"y\"} 1\n",
		"trailing garbage": "ok 1 2 3\n",
	}
	for label, doc := range cases {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %q", label, doc)
		}
	}
}

// TestValidateAcceptsForeign: documents other exporters emit —
// untyped samples, timestamps, histograms — pass.
func TestValidateAcceptsForeign(t *testing.T) {
	doc := `# A free comment.
untyped_metric 3.14 1712345678901
# HELP rq request duration
# TYPE rq histogram
rq_bucket{le="0.1"} 1
rq_bucket{le="+Inf"} 2
rq_sum 0.15
rq_count 2
nan_gauge NaN
`
	n, err := Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("validated %d samples, want 6", n)
	}
}

// TestGaugeSetAndHandler: gauges set from a driving loop surface
// through the HTTP handler, updates overwrite in place, and non-GET is
// rejected.
func TestGaugeSetAndHandler(t *testing.T) {
	g := NewGaugeSet()
	g.Set("dismem_now_seconds", "virtual clock", nil, 100)
	g.Set("dismem_pool_used_mib", "pool usage", map[string]string{"pool": "0"}, 1)
	g.Set("dismem_now_seconds", "virtual clock", nil, 200) // overwrite

	h := Handler(g)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	if _, err := Validate(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape fails validation: %v\n%s", err, body)
	}
	if !strings.Contains(body, "dismem_now_seconds 200\n") {
		t.Fatalf("gauge not updated in place:\n%s", body)
	}
	if strings.Contains(body, "dismem_now_seconds 100") {
		t.Fatalf("stale gauge value retained:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d, want 405", rec.Code)
	}
}

// TestExpvarSource: expvar Ints surface as counters with sanitized
// names; non-Int vars are skipped.
func TestExpvarSource(t *testing.T) {
	m := new(expvar.Map).Init()
	m.Add("queries_served", 7)
	m.Add("fork-ns.max", 123)
	m.Set("not_an_int", new(expvar.Float))

	var b strings.Builder
	if err := WriteExposition(&b, ExpvarSource("dmserve", m).Metrics()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if _, err := Validate(strings.NewReader(body)); err != nil {
		t.Fatalf("expvar bridge output fails validation: %v\n%s", err, body)
	}
	if !strings.Contains(body, "dmserve_queries_served 7\n") {
		t.Fatalf("missing bridged counter:\n%s", body)
	}
	if !strings.Contains(body, "dmserve_fork_ns_max 123\n") {
		t.Fatalf("key not sanitized:\n%s", body)
	}
	if strings.Contains(body, "not_an_int") {
		t.Fatalf("non-Int var bridged:\n%s", body)
	}
}

// TestSanitizeName pins the sanitizer's mapping.
func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":  "ok_name",
		"9lives":   "_9lives",
		"a.b-c/d":  "a_b_c_d",
		"":         "_",
		"ünïcode!": "_n_code_",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
