package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Validate parses one exposition-format document (text format 0.0.4)
// and returns the number of samples it holds. It is the hand-written
// checker the tests and the CI metrics smoke run over every /metrics
// scrape: a malformed name, an unparsable value, broken label quoting,
// metadata after samples, duplicate metadata or duplicate samples are
// all errors with line numbers. It accepts any document a conforming
// scraper would, not only ones this package wrote (untyped families,
// histogram/summary TYPEs, timestamps, free comments).
func Validate(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		samples   int
		lineNo    int
		typed     = map[string]string{} // family -> TYPE
		helped    = map[string]bool{}
		sampled   = map[string]bool{} // family has samples
		seen      = map[string]bool{} // name{sig} uniqueness
		lastFam   string
		famClosed = map[string]bool{} // family interrupted by another family's samples
	)
	validTypes := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validName(fields[2]) {
					return samples, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
				}
				name := fields[2]
				if helped[name] {
					return samples, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if sampled[name] {
					return samples, fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if len(fields) != 4 || !validName(fields[2]) {
					return samples, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validTypes[typ] {
					return samples, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
				}
				if _, dup := typed[name]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return samples, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typed[name] = typ
			}
			continue
		}
		name, sig, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(name, typed)
		if fam != lastFam {
			if lastFam != "" {
				famClosed[lastFam] = true
			}
			if famClosed[fam] {
				return samples, fmt.Errorf("line %d: samples for %s are not contiguous", lineNo, fam)
			}
			lastFam = fam
		}
		if seen[name+sig] {
			return samples, fmt.Errorf("line %d: duplicate sample %s%s", lineNo, name, sig)
		}
		seen[name+sig] = true
		sampled[fam] = true
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("document holds no samples")
	}
	return samples, nil
}

// familyOf maps a sample name to its metric family: histogram and
// summary samples use the base name's _bucket/_sum/_count suffixes.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSample validates one sample line and returns the metric name
// and its canonicalized label signature.
func parseSample(line string) (name, sig string, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		var labels []string
		seen := map[string]bool{}
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			j := strings.IndexByte(rest, '=')
			if j < 0 {
				return "", "", fmt.Errorf("unterminated label set")
			}
			lname := strings.TrimSpace(rest[:j])
			if !validLabelName(lname) {
				return "", "", fmt.Errorf("invalid label name %q", lname)
			}
			if seen[lname] {
				return "", "", fmt.Errorf("duplicate label %q", lname)
			}
			seen[lname] = true
			rest = rest[j+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", "", fmt.Errorf("label %s value is not quoted", lname)
			}
			val, remainder, err := parseQuoted(rest)
			if err != nil {
				return "", "", fmt.Errorf("label %s: %w", lname, err)
			}
			labels = append(labels, fmt.Sprintf("%s=%q", lname, val))
			rest = remainder
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			} else if !strings.HasPrefix(strings.TrimLeft(rest, " \t"), "}") {
				return "", "", fmt.Errorf("expected ',' or '}' after label %s", lname)
			}
		}
		sig = "{" + strings.Join(labels, ",") + "}"
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("expected value [timestamp], got %q", strings.TrimSpace(rest))
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", "", fmt.Errorf("unparsable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", fmt.Errorf("unparsable timestamp %q", fields[1])
		}
	}
	return name, sig, nil
}

// parseQuoted consumes one double-quoted, backslash-escaped string
// from the front of s and returns the decoded value plus the rest.
func parseQuoted(s string) (val, rest string, err error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
