package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// PerfettoSink writes the trace in Chrome trace-event JSON — the format
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
//
// Jobs render as async duration spans grouped onto per-rack and
// per-pool tracks: a job dispatched onto racks {2,3} touching pool 2
// opens one span on each of the three tracks, closed at termination.
// Scenario interventions and failure restarts render as instant events
// on a dedicated "cluster" track. Timestamps are simulated seconds
// converted to the format's microseconds.
//
// The writer streams: events encode as they arrive and Close emits the
// closing bracket, so the output is valid JSON only after Close. Spans
// still open at Close (a run stopped early) are left unclosed — the
// format tolerates it, and it is the truthful rendering of an
// interrupted run. The write-error discipline matches JSONLSink.
type PerfettoSink struct {
	bw     *bufio.Writer
	err    error
	closed bool
	wrote  bool // at least one event emitted (comma placement)

	// Track metadata is emitted lazily, once per first use.
	rackNamed map[int]bool
	poolNamed map[int]bool
	// open maps a job ID to the track ids of its open spans.
	open map[int]openSpan
}

type openSpan struct {
	racks []int
	pools []int
}

// Perfetto track layout: process IDs group the track families.
const (
	pidRacks   = 1 // one thread per rack
	pidPools   = 2 // one thread per pool
	pidCluster = 3 // instants: scenario interventions, restarts
)

// NewPerfettoSink returns a sink writing Chrome trace-event JSON.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	s := &PerfettoSink{
		bw:        bufio.NewWriter(w),
		rackNamed: make(map[int]bool),
		poolNamed: make(map[int]bool),
		open:      make(map[int]openSpan),
	}
	_, s.err = s.bw.WriteString("{\"traceEvents\":[\n")
	if s.err == nil {
		s.emitRaw(map[string]any{
			"ph": "M", "name": "process_name", "pid": pidCluster, "tid": 0,
			"args": map[string]any{"name": "cluster"},
		})
	}
	return s
}

// perfettoEvent is the wire shape of one trace-event line, with a fixed
// field order for deterministic output.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (s *PerfettoSink) emitRaw(v any) {
	if s.err != nil {
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if s.wrote {
		if _, s.err = s.bw.WriteString(",\n"); s.err != nil {
			return
		}
	}
	s.wrote = true
	_, s.err = s.bw.Write(blob)
}

func (s *PerfettoSink) emit(ev perfettoEvent) { s.emitRaw(ev) }

// nameRack / namePool emit the track metadata once per first use.
func (s *PerfettoSink) nameRack(r int) {
	if s.rackNamed[r] {
		return
	}
	s.rackNamed[r] = true
	s.emitRaw(map[string]any{
		"ph": "M", "name": "process_name", "pid": pidRacks, "tid": r,
		"args": map[string]any{"name": "racks"},
	})
	s.emitRaw(map[string]any{
		"ph": "M", "name": "thread_name", "pid": pidRacks, "tid": r,
		"args": map[string]any{"name": fmt.Sprintf("rack %d", r)},
	})
}

func (s *PerfettoSink) namePool(p int) {
	if s.poolNamed[p] {
		return
	}
	s.poolNamed[p] = true
	s.emitRaw(map[string]any{
		"ph": "M", "name": "process_name", "pid": pidPools, "tid": p,
		"args": map[string]any{"name": "pools"},
	})
	s.emitRaw(map[string]any{
		"ph": "M", "name": "thread_name", "pid": pidPools, "tid": p,
		"args": map[string]any{"name": fmt.Sprintf("pool %d", p)},
	})
}

// ts converts simulated seconds to trace-format microseconds.
func ts(now int64) int64 { return now * 1_000_000 }

// Add implements TraceSink.
func (s *PerfettoSink) Add(ev Event) {
	if s.err != nil || s.closed {
		return
	}
	switch ev.Type {
	case Dispatch:
		name := fmt.Sprintf("job %d", ev.Job)
		args := map[string]any{
			"user": ev.User, "nodes": ev.Nodes, "submit": ev.Submit,
			"local_mib": ev.LocalMiB, "remote_mib": ev.RemoteMiB,
			"dilation": ev.Dilation,
		}
		for _, r := range ev.Racks {
			s.nameRack(r)
			s.emit(perfettoEvent{
				Name: name, Cat: "job", Ph: "b", Ts: ts(ev.Now),
				Pid: pidRacks, Tid: r, ID: fmt.Sprintf("j%d.r%d", ev.Job, r),
				Args: args,
			})
		}
		for _, p := range ev.Pools {
			s.namePool(p)
			s.emit(perfettoEvent{
				Name: name, Cat: "job", Ph: "b", Ts: ts(ev.Now),
				Pid: pidPools, Tid: p, ID: fmt.Sprintf("j%d.p%d", ev.Job, p),
				Args: args,
			})
		}
		s.open[ev.Job] = openSpan{
			racks: append([]int(nil), ev.Racks...),
			pools: append([]int(nil), ev.Pools...),
		}
	case Terminate:
		sp, ok := s.open[ev.Job]
		if !ok {
			return // rejected at arrival, or dispatched before this trace began
		}
		delete(s.open, ev.Job)
		name := fmt.Sprintf("job %d", ev.Job)
		args := map[string]any{"reason": ev.Reason}
		if ev.Restarts > 0 {
			args["restarts"] = ev.Restarts
		}
		for _, r := range sp.racks {
			s.emit(perfettoEvent{
				Name: name, Cat: "job", Ph: "e", Ts: ts(ev.Now),
				Pid: pidRacks, Tid: r, ID: fmt.Sprintf("j%d.r%d", ev.Job, r),
				Args: args,
			})
		}
		for _, p := range sp.pools {
			s.emit(perfettoEvent{
				Name: name, Cat: "job", Ph: "e", Ts: ts(ev.Now),
				Pid: pidPools, Tid: p, ID: fmt.Sprintf("j%d.p%d", ev.Job, p),
				Args: args,
			})
		}
	case Restart:
		// The killed occupant's spans close, and the resubmission shows
		// as an instant on the cluster track.
		sp, ok := s.open[ev.Job]
		if ok {
			delete(s.open, ev.Job)
			name := fmt.Sprintf("job %d", ev.Job)
			for _, r := range sp.racks {
				s.emit(perfettoEvent{
					Name: name, Cat: "job", Ph: "e", Ts: ts(ev.Now),
					Pid: pidRacks, Tid: r, ID: fmt.Sprintf("j%d.r%d", ev.Job, r),
					Args: map[string]any{"reason": "restart"},
				})
			}
			for _, p := range sp.pools {
				s.emit(perfettoEvent{
					Name: name, Cat: "job", Ph: "e", Ts: ts(ev.Now),
					Pid: pidPools, Tid: p, ID: fmt.Sprintf("j%d.p%d", ev.Job, p),
					Args: map[string]any{"reason": "restart"},
				})
			}
		}
		s.emit(perfettoEvent{
			Name: fmt.Sprintf("restart job %d", ev.Job), Cat: "restart",
			Ph: "i", Ts: ts(ev.Now), Pid: pidCluster, Tid: 0, S: "g",
			Args: map[string]any{"restarts": ev.Restarts},
		})
	case ScenarioEvent, CheckpointMark, ForkMark:
		s.emit(perfettoEvent{
			Name: ev.Detail, Cat: string(ev.Type),
			Ph: "i", Ts: ts(ev.Now), Pid: pidCluster, Tid: 0, S: "g",
		})
	case Submit:
		// Queue waits render through the dispatch span's submit arg; a
		// per-submit instant on every track would drown the view.
	}
}

// Close implements TraceSink: it writes the closing bracket, flushes,
// and returns the first error. Spans of still-running jobs (a stopped
// run) stay open — the truthful rendering of an interrupted run.
func (s *PerfettoSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	if _, s.err = s.bw.WriteString("\n]}\n"); s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
