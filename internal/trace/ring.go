package trace

import "sync"

// Ring is a bounded in-memory TraceSink: it retains the newest Cap
// events and serves time-windowed queries. Unlike the stream sinks it
// is safe for concurrent use — dmserve's drive goroutine appends while
// HTTP handlers query.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int // index of the slot the next Add overwrites
	full    bool
	dropped uint64
}

// NewRing returns a ring retaining the newest cap events (minimum 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Add implements TraceSink.
func (r *Ring) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
	r.dropped++
}

// Close implements TraceSink; the ring keeps serving after close (the
// run drained, its tail stays queryable).
func (r *Ring) Close() error { return nil }

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events the bound has evicted.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Query returns the retained events with from <= Now < to, oldest
// first (to <= 0 means no upper bound). The result is a copy.
func (r *Ring) Query(from, to int64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	scan := func(ev Event) {
		if ev.Now < from || (to > 0 && ev.Now >= to) {
			return
		}
		out = append(out, ev)
	}
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			scan(r.buf[i])
		}
		for i := 0; i < r.next; i++ {
			scan(r.buf[i])
		}
	} else {
		for _, ev := range r.buf {
			scan(ev)
		}
	}
	return out
}
