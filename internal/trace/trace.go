// Package trace is the per-job lifecycle trace layer: typed,
// deterministically-ordered events emitted synchronously from the
// simulation engine's existing handler points — submit, dispatch (with
// placement detail), terminate/kill (with reason), failure restarts,
// scenario interventions, and checkpoint/fork boundaries — consumed by
// a TraceSink.
//
// Tracing follows the series-sink contract (DESIGN.md §11) exactly: a
// nil sink is zero-cost, the engine closes the configured sink exactly
// once on every terminal path of the run, and the JSONL stream is
// checkpoint-composable — an interrupted run's trace plus its resume's
// trace concatenate byte-for-byte to the uninterrupted run's trace.
// Checkpoint/fork boundary events are therefore never emitted by the
// engine into a composing stream; layers that own non-composing traces
// (the dmserve ring) record them instead.
//
// The package is dependency-free: events carry plain serializable
// values, never live engine state.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// Type tags one trace event.
type Type string

// The event taxonomy (DESIGN.md §12). Values are the JSONL wire names.
const (
	// Submit: a job arrived (before the feasibility check).
	Submit Type = "submit"
	// Dispatch: a job started, with placement detail — racks and pools
	// touched, local/remote memory split, dilation at start.
	Dispatch Type = "dispatch"
	// Terminate: a job reached a terminal state; Reason is "done",
	// "killed" (walltime limit), "rejected" (infeasible at arrival) or
	// "failed" (failure-restart budget exhausted).
	Terminate Type = "terminate"
	// Restart: a node failure killed the job and the site resubmitted
	// it; Restarts is the cumulative count for this job.
	Restart Type = "restart"
	// ScenarioEvent: a timed intervention was applied; Detail is the
	// intervention in scenario-grammar form.
	ScenarioEvent Type = "scenario"
	// CheckpointMark / ForkMark are checkpoint/fork boundary events.
	// The engine never emits them (they would break trace composition
	// across interrupt/resume); owners of non-composing traces — the
	// dmserve ring — record them.
	CheckpointMark Type = "checkpoint"
	ForkMark       Type = "fork"
)

// Event is one trace event. Only the fields the Type uses are set; the
// rest stay zero and are omitted from the JSONL encoding. Job IDs are
// positive (workload.Job.Validate), so a zero Job always means "not a
// job event".
type Event struct {
	Now  int64
	Type Type

	// Job lifecycle fields.
	Job    int
	User   int
	Nodes  int
	Submit int64 // dispatch/terminate: the job's submit instant

	// Dispatch placement detail.
	Racks     []int // racks touched, ascending
	Pools     []int // pools touched, ascending
	LocalMiB  int64
	RemoteMiB int64
	Dilation  float64 // dilation at dispatch

	// Terminate / restart detail.
	Start    int64  // the dispatch instant this span began at
	Reason   string // "done" | "killed" | "rejected" | "failed"
	Restarts int

	// Scenario / boundary detail.
	Detail string
}

// TraceSink consumes trace events as the simulation produces them,
// in deterministic firing order (events are emitted synchronously from
// the single simulation goroutine). Close flushes buffered output and
// reports the first write error. The engine closes its configured sink
// exactly once, on every terminal path of the run.
type TraceSink interface {
	Add(ev Event)
	Close() error
}

// Discard is the TraceSink that drops every event.
var Discard TraceSink = discard{}

type discard struct{}

func (discard) Add(Event)    {}
func (discard) Close() error { return nil }

// jsonEvent fixes the JSONL export schema (and field order)
// independently of the in-memory Event layout.
type jsonEvent struct {
	Now       int64   `json:"now"`
	Type      Type    `json:"type"`
	Job       int     `json:"job,omitempty"`
	User      int     `json:"user,omitempty"`
	Nodes     int     `json:"nodes,omitempty"`
	Submit    int64   `json:"submit,omitempty"`
	Racks     []int   `json:"racks,omitempty"`
	Pools     []int   `json:"pools,omitempty"`
	LocalMiB  int64   `json:"local_mib,omitempty"`
	RemoteMiB int64   `json:"remote_mib,omitempty"`
	Dilation  float64 `json:"dilation,omitempty"`
	Start     int64   `json:"start,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	Restarts  int     `json:"restarts,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// MarshalJSON fixes Event's JSON form to the JSONL wire schema, so an
// event serialized anywhere else (the dmserve /v1/trace endpoint, say)
// is byte-identical to its JSONL line.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{
		Now: e.Now, Type: e.Type,
		Job: e.Job, User: e.User, Nodes: e.Nodes, Submit: e.Submit,
		Racks: e.Racks, Pools: e.Pools,
		LocalMiB: e.LocalMiB, RemoteMiB: e.RemoteMiB, Dilation: e.Dilation,
		Start: e.Start, Reason: e.Reason, Restarts: e.Restarts,
		Detail: e.Detail,
	})
}

// JSONLSink encodes each event as one JSON line to a buffered writer,
// with the stream-sink discipline: the first write error latches
// (subsequent Adds are no-ops, Close reports it) and the sink never
// closes the underlying writer.
type JSONLSink struct {
	bw      *bufio.Writer
	scratch []byte
	err     error
}

// NewJSONLSink returns a sink writing one JSON object per event line.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// Add implements TraceSink.
func (s *JSONLSink) Add(ev Event) {
	if s.err != nil {
		return
	}
	s.scratch = appendEvent(s.scratch[:0], ev)
	s.scratch = append(s.scratch, '\n')
	_, s.err = s.bw.Write(s.scratch)
}

// appendEvent encodes ev byte-identically to json.Marshal(jsonEvent)
// — same field order, omitempty semantics, float and string encoding
// (pinned by a unit test) — without reflection: the trace hot path
// runs once per lifecycle event, and a reflective Marshal there costs
// ~20% of end-to-end simulation throughput.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"now":`...)
	b = strconv.AppendInt(b, ev.Now, 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, string(ev.Type))
	if ev.Job != 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, int64(ev.Job), 10)
	}
	if ev.User != 0 {
		b = append(b, `,"user":`...)
		b = strconv.AppendInt(b, int64(ev.User), 10)
	}
	if ev.Nodes != 0 {
		b = append(b, `,"nodes":`...)
		b = strconv.AppendInt(b, int64(ev.Nodes), 10)
	}
	if ev.Submit != 0 {
		b = append(b, `,"submit":`...)
		b = strconv.AppendInt(b, ev.Submit, 10)
	}
	if len(ev.Racks) > 0 {
		b = appendIntSlice(append(b, `,"racks":`...), ev.Racks)
	}
	if len(ev.Pools) > 0 {
		b = appendIntSlice(append(b, `,"pools":`...), ev.Pools)
	}
	if ev.LocalMiB != 0 {
		b = append(b, `,"local_mib":`...)
		b = strconv.AppendInt(b, ev.LocalMiB, 10)
	}
	if ev.RemoteMiB != 0 {
		b = append(b, `,"remote_mib":`...)
		b = strconv.AppendInt(b, ev.RemoteMiB, 10)
	}
	if ev.Dilation != 0 {
		b = append(b, `,"dilation":`...)
		b = appendJSONFloat(b, ev.Dilation)
	}
	if ev.Start != 0 {
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, ev.Start, 10)
	}
	if ev.Reason != "" {
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
	}
	if ev.Restarts != 0 {
		b = append(b, `,"restarts":`...)
		b = strconv.AppendInt(b, int64(ev.Restarts), 10)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	return append(b, '}')
}

func appendIntSlice(b []byte, v []int) []byte {
	b = append(b, '[')
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, ']')
}

// appendJSONString quotes s the way encoding/json does. The fast path
// covers the strings the engine actually emits (plain ASCII grammar
// text); anything needing escapes falls back to json.Marshal.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= utf8.RuneSelf || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			blob, err := json.Marshal(s)
			if err != nil { // unreachable for a string
				return append(append(b, '"'), '"')
			}
			return append(b, blob...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat formats f exactly as encoding/json's float encoder
// (shortest round-trip form, 'e' outside [1e-6, 1e21) with a trimmed
// exponent).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e+09" to "e+9" etc.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// Close implements TraceSink: it flushes and returns the first error.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
