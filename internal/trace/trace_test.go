package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestAppendEventMatchesMarshal pins the contract appendEvent's doc
// comment promises: the hand-rolled encoder is byte-identical to
// json.Marshal of the same event (which routes through jsonEvent via
// Event.MarshalJSON) — same field order, omitempty semantics, string
// escaping and float formatting.
func TestAppendEventMatchesMarshal(t *testing.T) {
	cases := []Event{
		{},
		{Now: 42, Type: Submit, Job: 7, User: 3, Nodes: 16, Submit: 42},
		{
			Now: 90061, Type: Dispatch, Job: 1234, User: 9, Nodes: 128,
			Submit: 90000, Racks: []int{0, 2, 7}, Pools: []int{2},
			LocalMiB: 1 << 20, RemoteMiB: 4096, Dilation: 1.0417,
		},
		{Now: 100, Type: Dispatch, Dilation: 1},
		{Now: 100, Type: Dispatch, Dilation: 0.3333333333333333},
		{Now: 100, Type: Dispatch, Dilation: 1e-7},  // 'e' format, small
		{Now: 100, Type: Dispatch, Dilation: 5e21},  // 'e' format, large
		{Now: 100, Type: Dispatch, Dilation: -5e21}, // negative exponent form
		{Now: 100, Type: Dispatch, Dilation: 1e-21},
		{Now: 100, Type: Dispatch, Dilation: math.MaxFloat64},
		{Now: 100, Type: Dispatch, Dilation: math.SmallestNonzeroFloat64},
		{Now: -5, Type: Terminate, Job: 1, Submit: -1, Start: -2, Reason: "done"},
		{Now: 7, Type: Terminate, Job: 2, Reason: "killed", Restarts: 3},
		{Now: 7, Type: Restart, Job: 2, Restarts: 1, Start: 5},
		{Now: 21600, Type: ScenarioEvent, Detail: "at=21600 down rack=2"},
		{Now: 1, Type: CheckpointMark, Detail: `ring checkpoint "odd name".dmckpt`},
		{Now: 1, Type: ForkMark, Detail: "path\\with\\backslashes"},
		{Now: 1, Type: ScenarioEvent, Detail: "html-escaped <tags> & ampersands"},
		{Now: 1, Type: ScenarioEvent, Detail: "control\tchars\nand unicode: λ→µ"},
		{Now: 1, Type: Type("weird \"type\""), Reason: "non-ascii é"},
		{Now: 1, Type: Submit, Racks: []int{5}, Pools: []int{0, 1, 2, 3}},
	}
	for i, ev := range cases {
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := appendEvent(nil, ev)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: appendEvent diverges from json.Marshal\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestAppendJSONFloatSweep brute-forces the float encoder against
// encoding/json across magnitudes spanning both format regimes and
// the boundaries between them.
func TestAppendJSONFloatSweep(t *testing.T) {
	vals := []float64{0, 1e-6, 9.999999e-7, 1e21, 9.999e20, 1.5e-9, 2.5e24}
	for exp := -30; exp <= 30; exp++ {
		vals = append(vals, 1.7*math.Pow(10, float64(exp)))
	}
	for _, v := range vals {
		for _, f := range []float64{v, -v} {
			want, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
				t.Errorf("appendJSONFloat(%g) = %s, want %s", f, got, want)
			}
		}
	}
}

// errWriter fails every write after the first n bytes.
type errWriter struct{ budget int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestJSONLSinkErrorLatch: the first write error latches — later Adds
// are no-ops and Close keeps reporting the original error.
func TestJSONLSinkErrorLatch(t *testing.T) {
	s := NewJSONLSink(&errWriter{budget: 16})
	big := Event{Now: 1, Type: ScenarioEvent, Detail: strings.Repeat("x", 64<<10)}
	for i := 0; i < 4; i++ {
		s.Add(big) // oversized lines bypass the bufio buffer and hit the writer
	}
	err := s.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close() = %v, want the latched write error", err)
	}
	if again := s.Close(); again != err {
		t.Fatalf("second Close() = %v, want the same latched error", again)
	}
}

// TestJSONLSinkDoesNotCloseWriter: Close flushes but never closes the
// underlying writer — a bytes.Buffer stays usable and holds one JSON
// line per event.
func TestJSONLSinkDoesNotCloseWriter(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Add(Event{Now: 1, Type: Submit, Job: 1})
	s.Add(Event{Now: 2, Type: Terminate, Job: 1, Reason: "done"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
	}
}

func ringEvents(n, from int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Now: int64(from + i), Type: Submit, Job: from + i}
	}
	return evs
}

// TestRingWraparound: the ring keeps exactly the newest Cap events in
// order and counts evictions.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for _, ev := range ringEvents(10, 0) { // Now = 0..9
		r.Add(ev)
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", r.Dropped())
	}
	got := r.Query(0, 0)
	if len(got) != 4 {
		t.Fatalf("Query returned %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := int64(6 + i); ev.Now != want {
			t.Fatalf("event %d has Now=%d, want %d (oldest-first newest tail)", i, ev.Now, want)
		}
	}
}

// TestRingQueryWindows: from is inclusive, to exclusive, to <= 0 means
// unbounded, and an empty window yields an empty (possibly nil) slice.
func TestRingQueryWindows(t *testing.T) {
	r := NewRing(16)
	for _, ev := range ringEvents(10, 0) {
		r.Add(ev)
	}
	for _, tc := range []struct {
		from, to int64
		want     int
	}{
		{0, 0, 10}, {0, -1, 10}, {3, 7, 4}, {3, 4, 1}, {7, 3, 0}, {10, 0, 0}, {9, 0, 1},
	} {
		if got := len(r.Query(tc.from, tc.to)); got != tc.want {
			t.Errorf("Query(%d, %d) returned %d events, want %d", tc.from, tc.to, got, tc.want)
		}
	}
}

// TestRingQueryCopies: Query returns a copy — mutating the result must
// not corrupt the retained events.
func TestRingQueryCopies(t *testing.T) {
	r := NewRing(4)
	r.Add(Event{Now: 1, Type: Submit, Job: 1})
	got := r.Query(0, 0)
	got[0].Job = 999
	if again := r.Query(0, 0); again[0].Job != 1 {
		t.Fatalf("Query result aliases ring storage: job mutated to %d", again[0].Job)
	}
}

// TestRingCloseKeepsServing: Close is a no-op — the ring stays
// queryable after the traced run drains.
func TestRingCloseKeepsServing(t *testing.T) {
	r := NewRing(4)
	r.Add(Event{Now: 5, Type: Submit, Job: 1})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(0, 0); len(got) != 1 {
		t.Fatalf("ring lost its events after Close: %d retained", len(got))
	}
	r.Add(Event{Now: 6, Type: Terminate, Job: 1, Reason: "done"})
	if got := r.Query(0, 0); len(got) != 2 {
		t.Fatalf("ring rejected an Add after Close: %d retained", len(got))
	}
}

// TestPerfettoDocumentShape: a minimal lifecycle renders as balanced
// async spans on the rack and pool tracks, and Close yields one valid
// JSON document.
func TestPerfettoDocumentShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewPerfettoSink(&buf)
	s.Add(Event{Now: 10, Type: Submit, Job: 1, User: 1, Nodes: 2})
	s.Add(Event{
		Now: 20, Type: Dispatch, Job: 1, User: 1, Nodes: 2, Submit: 10,
		Racks: []int{0, 1}, Pools: []int{3}, LocalMiB: 100, RemoteMiB: 50, Dilation: 1.2,
	})
	s.Add(Event{Now: 25, Type: ScenarioEvent, Detail: "at=25 down rack=2"})
	s.Add(Event{Now: 30, Type: Terminate, Job: 1, Submit: 10, Start: 20, Reason: "done"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  int64  `json:"ts"`
			Pid int    `json:"pid"`
			ID  string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON document: %v", err)
	}
	phases := map[string]int{}
	openIDs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		switch ev.Ph {
		case "b":
			openIDs[ev.ID]++
			if ev.Ts != 20*1_000_000 {
				t.Fatalf("span %q opens at ts=%d, want dispatch time in µs", ev.ID, ev.Ts)
			}
		case "e":
			openIDs[ev.ID]--
		}
	}
	// Two rack tracks + one pool track = three spans, opened and closed.
	if phases["b"] != 3 || phases["e"] != 3 || phases["i"] != 1 {
		t.Fatalf("phase counts = %v, want 3 b / 3 e / 1 i", phases)
	}
	for id, n := range openIDs {
		if n != 0 {
			t.Fatalf("span %q unbalanced by %d", id, n)
		}
	}
	for _, id := range []string{"j1.r0", "j1.r1", "j1.p3"} {
		if _, ok := openIDs[id]; !ok {
			t.Fatalf("expected span id %q missing (got %v)", id, openIDs)
		}
	}
}

// TestPerfettoStoppedRunLeavesSpansOpen: terminating the sink with a
// span still open keeps the document valid and the span unclosed —
// the truthful rendering of an interrupted run.
func TestPerfettoStoppedRunLeavesSpansOpen(t *testing.T) {
	var buf bytes.Buffer
	s := NewPerfettoSink(&buf)
	s.Add(Event{Now: 20, Type: Dispatch, Job: 1, Racks: []int{0}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON document: %v", err)
	}
	b, e := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			b++
		case "e":
			e++
		}
	}
	if b != 1 || e != 0 {
		t.Fatalf("got %d opens / %d closes, want the span left open", b, e)
	}
}

// TestJSONLSinkGrowthIsBounded sanity-checks the scratch-buffer reuse:
// a long stream of events should not allocate per event beyond the
// bufio flushes.
func TestJSONLSinkGrowthIsBounded(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	ev := Event{Now: 1, Type: Dispatch, Job: 1, Racks: []int{0, 1}, Dilation: 1.25}
	allocs := testing.AllocsPerRun(1000, func() { s.Add(ev) })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// bufio flushes amortize to well under one allocation per Add.
	if allocs > 0.5 {
		t.Fatalf("JSONLSink.Add allocates %.2f times per event, want ~0", allocs)
	}
	if testing.Verbose() {
		fmt.Println("allocs/add:", allocs)
	}
}
