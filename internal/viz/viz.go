// Package viz renders experiment series as ASCII charts for the
// terminal: line charts for figure sweeps and horizontal bar charts for
// per-policy comparisons. `dmsweep -plot` uses it to show a figure's
// shape without leaving the shell.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart renders one or more series on a shared grid. Each series
// gets its own glyph; overlapping points show the later series' glyph.
type LineChart struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int // grid cells, excluding axes (defaults 60x16)
	Series        []Series
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart. Series with no points are skipped; an empty
// chart renders a note instead of panicking.
func (c *LineChart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes are not on the border.
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			row := int((s.Y[i] - ymin) / (ymax - ymin) * float64(h-1))
			grid[h-1-row][col] = g
		}
	}

	yLo, yHi := formatTick(ymin+pad), formatTick(ymax-pad)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yHi)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), w-len(formatTick(xmax)), formatTick(xmin), formatTick(xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "   "))
	}
	return b.String()
}

// BarChart renders named values as horizontal bars scaled to the
// largest magnitude.
type BarChart struct {
	Title string
	Width int // bar cells (default 50)
	Names []string
	Vals  []float64
}

// Render draws the chart; mismatched Names/Vals lengths are truncated
// to the shorter.
func (c *BarChart) Render() string {
	w := c.Width
	if w <= 0 {
		w = 50
	}
	n := len(c.Names)
	if len(c.Vals) < n {
		n = len(c.Vals)
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if n == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	nameW, max := 0, 0.0
	for i := 0; i < n; i++ {
		if len(c.Names[i]) > nameW {
			nameW = len(c.Names[i])
		}
		if v := math.Abs(c.Vals[i]); v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	for i := 0; i < n; i++ {
		bar := int(math.Abs(c.Vals[i]) / max * float64(w))
		fmt.Fprintf(&b, "%-*s |%s %s\n", nameW, c.Names[i],
			strings.Repeat("█", bar), formatTick(c.Vals[i]))
	}
	return b.String()
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
