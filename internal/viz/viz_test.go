package viz

import (
	"strings"
	"testing"
)

func TestLineChartRendersAllSeries(t *testing.T) {
	c := &LineChart{
		Title:  "waits",
		XLabel: "pool GiB",
		YLabel: "wait s",
		Series: []Series{
			{Name: "memaware", X: []float64{0, 1, 2, 3}, Y: []float64{40, 20, 12, 10}},
			{Name: "oblivious", X: []float64{0, 1, 2, 3}, Y: []float64{40, 30, 25, 24}},
		},
	}
	out := c.Render()
	for _, want := range []string{"waits", "*", "o", "memaware", "oblivious", "pool GiB", "wait s", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Every rendered line must be present (height default 16 + frame).
	if lines := strings.Count(out, "\n"); lines < 18 {
		t.Fatalf("chart suspiciously short (%d lines):\n%s", lines, out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := (&LineChart{Title: "t"}).Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	// Degenerate ranges must not divide by zero or panic.
	c := &LineChart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestLineChartMismatchedXY(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "p", X: []float64{1, 2, 3}, Y: []float64{4}}}}
	out := c.Render()                           // must not panic; only the first point plots
	grid := out[:strings.LastIndex(out, "* p")] // exclude the legend glyph
	if strings.Count(grid, "*") != 1 {
		t.Fatalf("want exactly 1 plotted point:\n%s", out)
	}
}

func TestLineChartMonotoneMapping(t *testing.T) {
	// A strictly increasing series must render its max on the top row
	// and its min on the bottom row of the grid.
	c := &LineChart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}},
	}
	out := c.Render()
	rows := strings.Split(out, "\n")
	// The 5% y-padding keeps extremes one row inside the frame.
	if !strings.Contains(rows[0], "*") && !strings.Contains(rows[1], "*") {
		t.Fatalf("max not near the top row:\n%s", out)
	}
	if !strings.Contains(rows[3], "*") && !strings.Contains(rows[4], "*") {
		t.Fatalf("min not near the bottom row:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title: "util",
		Width: 10,
		Names: []string{"alpha", "beta"},
		Vals:  []float64{1.0, 0.5},
	}
	out := c.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("bar chart lines = %d, want 3:\n%s", len(lines), out)
	}
	// alpha is the max → 10 cells; beta half → 5 cells.
	if strings.Count(lines[1], "█") != 10 {
		t.Fatalf("alpha bar = %q", lines[1])
	}
	if strings.Count(lines[2], "█") != 5 {
		t.Fatalf("beta bar = %q", lines[2])
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	if out := (&BarChart{}).Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty bar chart: %q", out)
	}
	// All-zero values must not divide by zero.
	c := &BarChart{Names: []string{"z"}, Vals: []float64{0}}
	if out := c.Render(); strings.Contains(out, "NaN") {
		t.Fatalf("zero-value chart rendered NaN:\n%s", out)
	}
	// Mismatched lengths truncate.
	c2 := &BarChart{Names: []string{"a", "b"}, Vals: []float64{1}}
	if out := c2.Render(); strings.Contains(out, "b") {
		t.Fatalf("truncation failed:\n%s", out)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		45000:   "45k",
		12:      "12",
		3:       "3",
		0.25:    "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
