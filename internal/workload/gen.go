package workload

import (
	"fmt"
	"math"

	"dismem/internal/stats"
)

// GenConfig parameterises the synthetic workload generator. The defaults
// (DefaultGenConfig) are calibrated to the published shapes of
// production traces: bursty Weibull inter-arrivals with a diurnal cycle,
// power-of-two-biased job sizes with a heavy tail, log-normal runtimes,
// and a bimodal per-node memory footprint whose upper mode models the
// data-intensive jobs that motivate memory disaggregation.
type GenConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// Seed fixes the generator stream.
	Seed uint64

	// MeanInterarrival is the mean time between submissions in seconds.
	MeanInterarrival float64
	// ArrivalBurstiness is the Weibull shape k of inter-arrivals;
	// k = 1 is Poisson, k < 1 is burstier. Typical traces fit 0.6-0.8.
	ArrivalBurstiness float64
	// DiurnalAmplitude in [0,1) modulates the arrival rate with a
	// 24-hour sine: 0 disables the day/night cycle.
	DiurnalAmplitude float64

	// MaxNodes caps the per-job node request (machine size).
	MaxNodes int
	// SizeZipfExponent shapes the distribution over log2 size classes;
	// larger means more small jobs. 0 picks the default 1.4.
	SizeZipfExponent float64
	// SerialFraction is the extra probability mass on 1-node jobs.
	SerialFraction float64

	// RuntimeLogMean/RuntimeLogSigma parameterise the log-normal base
	// runtime in seconds (Lublin-style; defaults give a ~1.1 h mean
	// with a long tail).
	RuntimeLogMean, RuntimeLogSigma float64
	// MaxRuntime truncates runtimes (site walltime cap), seconds.
	MaxRuntime int64

	// MemSmall and MemLarge are the per-node footprint distributions
	// (MiB) of the "capacity" and "data-intensive" job populations;
	// LargeMemFraction is the weight of the latter.
	MemSmall, MemLarge stats.Dist
	LargeMemFraction   float64
	// MaxMemPerNode truncates footprints (no job can exceed what the
	// largest configuration could ever serve), MiB.
	MaxMemPerNode int64

	// EstimateAccuracy in (0,1] scales how tight user estimates are:
	// the generator draws accuracy a ~ classes calibrated so that
	// E[a] ≈ EstimateAccuracy and sets Estimate = BaseRuntime/a,
	// rounded up to the next estimate quantum.
	EstimateAccuracy float64
	// EstimateQuantum rounds estimates up (users request round
	// numbers); seconds, default 300.
	EstimateQuantum int64

	// Users is the size of the simulated user population.
	Users int
}

// DefaultGenConfig returns the calibrated defaults for n jobs with the
// given seed, sized for a machine with maxNodes nodes.
func DefaultGenConfig(n int, seed uint64, maxNodes int) GenConfig {
	return GenConfig{
		Jobs:              n,
		Seed:              seed,
		MeanInterarrival:  90,
		ArrivalBurstiness: 0.7,
		DiurnalAmplitude:  0.4,
		MaxNodes:          maxNodes,
		SizeZipfExponent:  1.4,
		SerialFraction:    0.25,
		RuntimeLogMean:    7.4, // median ≈ 27 min
		RuntimeLogSigma:   1.5,
		MaxRuntime:        24 * 3600,
		MemSmall:          stats.Truncated{Inner: stats.LogNormal{Mu: 8.0, Sigma: 0.8}, Lo: 256, Hi: 64 * 1024},
		MemLarge:          stats.Truncated{Inner: stats.LogNormal{Mu: 11.8, Sigma: 0.6}, Lo: 32 * 1024, Hi: 256 * 1024},
		LargeMemFraction:  0.18,
		MaxMemPerNode:     256 * 1024,
		EstimateAccuracy:  0.4,
		EstimateQuantum:   300,
		Users:             64,
	}
}

// Validate reports the first invalid generator parameter, or nil.
func (c *GenConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("workload: gen: jobs %d <= 0", c.Jobs)
	case c.MeanInterarrival <= 0:
		return fmt.Errorf("workload: gen: mean interarrival %g <= 0", c.MeanInterarrival)
	case c.ArrivalBurstiness <= 0:
		return fmt.Errorf("workload: gen: burstiness %g <= 0", c.ArrivalBurstiness)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: gen: diurnal amplitude %g outside [0,1)", c.DiurnalAmplitude)
	case c.MaxNodes <= 0:
		return fmt.Errorf("workload: gen: max nodes %d <= 0", c.MaxNodes)
	case c.MaxRuntime <= 0:
		return fmt.Errorf("workload: gen: max runtime %d <= 0", c.MaxRuntime)
	case c.MaxMemPerNode <= 0:
		return fmt.Errorf("workload: gen: max mem/node %d <= 0", c.MaxMemPerNode)
	case c.EstimateAccuracy <= 0 || c.EstimateAccuracy > 1:
		return fmt.Errorf("workload: gen: estimate accuracy %g outside (0,1]", c.EstimateAccuracy)
	case c.Users <= 0:
		return fmt.Errorf("workload: gen: users %d <= 0", c.Users)
	}
	return nil
}

// Generate produces a synthetic workload from the configuration. The
// output is sorted by submit time and validates cleanly. It is the
// materialising wrapper over GenStream: pulling a fresh stream cfg.Jobs
// times yields the identical job sequence.
func Generate(cfg GenConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := NewGenStream(cfg)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("synthetic(n=%d,seed=%d)", cfg.Jobs, cfg.Seed)
	return drainStream(name, "generator", cfg.Jobs, st.Next)
}

// MustGenerate is Generate for configurations known valid at compile
// time (tests, examples); it panics on error.
func MustGenerate(cfg GenConfig) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func sampleNodes(r *stats.RNG, zipf *stats.Zipf, cfg GenConfig) int {
	if r.Float64() < cfg.SerialFraction {
		return 1
	}
	class := zipf.Sample(r) - 1 // 0-based log2 class
	lo := 1 << class
	hi := lo * 2
	if hi > cfg.MaxNodes+1 {
		hi = cfg.MaxNodes + 1
	}
	if lo >= hi {
		lo = hi - 1
	}
	n := lo
	if hi > lo {
		n = lo + r.Intn(hi-lo)
	}
	if n < 1 {
		n = 1
	}
	if n > cfg.MaxNodes {
		n = cfg.MaxNodes
	}
	return n
}

func sampleMem(r *stats.RNG, cfg GenConfig) int64 {
	var v float64
	if r.Float64() < cfg.LargeMemFraction {
		v = cfg.MemLarge.Sample(r)
	} else {
		v = cfg.MemSmall.Sample(r)
	}
	m := int64(v)
	if m < 1 {
		m = 1
	}
	if m > cfg.MaxMemPerNode {
		m = cfg.MaxMemPerNode
	}
	return m
}

func sampleRuntime(r *stats.RNG, d stats.Dist, cfg GenConfig) int64 {
	v := int64(d.Sample(r))
	if v < 1 {
		v = 1
	}
	if v > cfg.MaxRuntime {
		v = cfg.MaxRuntime
	}
	return v
}

// sampleEstimate models user over-estimation. Users fall into rough
// accuracy classes (the "f-model"): some request the site maximum, most
// pad generously. Mean accuracy is steered by cfg.EstimateAccuracy.
func sampleEstimate(r *stats.RNG, base int64, cfg GenConfig) int64 {
	// Draw an accuracy in (0, 1]: Beta-like via min of uniforms biased
	// toward cfg.EstimateAccuracy.
	a := cfg.EstimateAccuracy * (0.25 + 1.5*r.Float64())
	if a > 1 {
		a = 1
	}
	if a < 0.02 {
		a = 0.02
	}
	est := int64(float64(base) / a)
	if est < base {
		est = base
	}
	q := cfg.EstimateQuantum
	est = (est + q - 1) / q * q
	if est > cfg.MaxRuntime*4 {
		est = cfg.MaxRuntime * 4
	}
	if est < base {
		est = base
	}
	return est
}

// weibullMeanFactor returns Γ(1 + 1/k), the mean of a unit-scale Weibull
// with shape k, used to hit a target mean inter-arrival exactly.
func weibullMeanFactor(k float64) float64 {
	lg, _ := math.Lgamma(1 + 1/k)
	return math.Exp(lg)
}
