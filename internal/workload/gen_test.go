package workload

import (
	"math"
	"testing"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(500, 7, 256)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 500 {
		t.Fatalf("generated %d jobs, want 500", len(a.Jobs))
	}
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("same seed diverged at job %d: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	c := MustGenerate(DefaultGenConfig(500, 8, 256))
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].BaseRuntime == c.Jobs[i].BaseRuntime {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical runtimes")
	}
}

func TestGenerateEnvelopes(t *testing.T) {
	cfg := DefaultGenConfig(3000, 11, 128)
	w := MustGenerate(cfg)
	for _, j := range w.Jobs {
		if j.Nodes < 1 || j.Nodes > cfg.MaxNodes {
			t.Fatalf("job %d: nodes %d outside [1,%d]", j.ID, j.Nodes, cfg.MaxNodes)
		}
		if j.BaseRuntime < 1 || j.BaseRuntime > cfg.MaxRuntime {
			t.Fatalf("job %d: runtime %d outside [1,%d]", j.ID, j.BaseRuntime, cfg.MaxRuntime)
		}
		if j.MemPerNode < 1 || j.MemPerNode > cfg.MaxMemPerNode {
			t.Fatalf("job %d: mem %d outside [1,%d]", j.ID, j.MemPerNode, cfg.MaxMemPerNode)
		}
		if j.Estimate < j.BaseRuntime {
			t.Fatalf("job %d: estimate %d < runtime %d (would be killed instantly)",
				j.ID, j.Estimate, j.BaseRuntime)
		}
		if j.Estimate%cfg.EstimateQuantum != 0 {
			t.Fatalf("job %d: estimate %d not a multiple of quantum %d",
				j.ID, j.Estimate, cfg.EstimateQuantum)
		}
		if j.User < 0 || j.User >= cfg.Users {
			t.Fatalf("job %d: user %d outside [0,%d)", j.ID, j.User, cfg.Users)
		}
	}
}

func TestGenerateInterarrivalMean(t *testing.T) {
	cfg := DefaultGenConfig(20000, 3, 64)
	cfg.DiurnalAmplitude = 0 // isolate the Weibull mean
	w := MustGenerate(cfg)
	first, last := w.Span()
	gap := float64(last-first) / float64(len(w.Jobs)-1)
	if math.Abs(gap-cfg.MeanInterarrival)/cfg.MeanInterarrival > 0.1 {
		t.Fatalf("mean inter-arrival %.1f s, want ~%.1f", gap, cfg.MeanInterarrival)
	}
}

func TestGenerateAccuracySteering(t *testing.T) {
	// Higher configured accuracy must produce tighter estimates.
	loose := DefaultGenConfig(4000, 5, 64)
	loose.EstimateAccuracy = 0.2
	tight := DefaultGenConfig(4000, 5, 64)
	tight.EstimateAccuracy = 0.9
	accMean := func(w *Workload) float64 {
		var sum float64
		for _, j := range w.Jobs {
			sum += j.Accuracy()
		}
		return sum / float64(len(w.Jobs))
	}
	la, ta := accMean(MustGenerate(loose)), accMean(MustGenerate(tight))
	if la >= ta {
		t.Fatalf("accuracy not steered: loose %.3f >= tight %.3f", la, ta)
	}
	if ta < 0.5 {
		t.Fatalf("tight config mean accuracy %.3f, want > 0.5", ta)
	}
}

func TestGenerateMemoryBimodal(t *testing.T) {
	cfg := DefaultGenConfig(5000, 9, 64)
	w := MustGenerate(cfg)
	large := 0
	for _, j := range w.Jobs {
		if j.MemPerNode > 64*1024 {
			large++
		}
	}
	frac := float64(large) / float64(len(w.Jobs))
	// The large-memory mode is 18% of jobs; its lower truncation is
	// 32 GiB so a bit more than half of it exceeds 64 GiB.
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("large-memory fraction %.3f outside plausible [0.08,0.25]", frac)
	}
}

func TestGenerateSerialFraction(t *testing.T) {
	cfg := DefaultGenConfig(5000, 13, 256)
	w := MustGenerate(cfg)
	serial := 0
	for _, j := range w.Jobs {
		if j.Nodes == 1 {
			serial++
		}
	}
	frac := float64(serial) / float64(len(w.Jobs))
	// SerialFraction direct mass (0.25) plus the smallest Zipf class.
	if frac < 0.25 || frac > 0.75 {
		t.Fatalf("serial fraction %.3f outside [0.25,0.75]", frac)
	}
}

func TestGenerateValidateErrors(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Jobs = 0 },
		func(c *GenConfig) { c.MeanInterarrival = 0 },
		func(c *GenConfig) { c.ArrivalBurstiness = -1 },
		func(c *GenConfig) { c.DiurnalAmplitude = 1 },
		func(c *GenConfig) { c.MaxNodes = 0 },
		func(c *GenConfig) { c.MaxRuntime = 0 },
		func(c *GenConfig) { c.MaxMemPerNode = 0 },
		func(c *GenConfig) { c.EstimateAccuracy = 0 },
		func(c *GenConfig) { c.EstimateAccuracy = 1.5 },
		func(c *GenConfig) { c.Users = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultGenConfig(10, 1, 8)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateDiurnalCycleThinsNight(t *testing.T) {
	// With a strong diurnal cycle, more jobs must land in the "day"
	// half-phase (sin > 0) than the "night" half.
	cfg := DefaultGenConfig(20000, 17, 64)
	cfg.DiurnalAmplitude = 0.9
	w := MustGenerate(cfg)
	day := 0
	for _, j := range w.Jobs {
		if j.Submit%86400 < 43200 {
			day++
		}
	}
	frac := float64(day) / float64(len(w.Jobs))
	if frac < 0.55 {
		t.Fatalf("day-half fraction %.3f, want > 0.55 with amplitude 0.9", frac)
	}
}
