// Package workload defines the batch-job model, reads and writes traces
// in the Standard Workload Format (SWF), and generates synthetic
// workloads whose marginal distributions follow the published shapes of
// production HPC traces (heavy-tailed runtimes and memory footprints,
// bursty arrivals, power-of-two job sizes).
package workload

import (
	"fmt"
	"sort"
)

// State is a job's lifecycle state within a simulation.
type State int

// Job lifecycle states in submission order.
const (
	// StatePending means submitted and waiting in the queue.
	StatePending State = iota
	// StateRunning means dispatched onto nodes.
	StateRunning
	// StateCompleted means finished within its walltime estimate.
	StateCompleted
	// StateKilled means terminated at the walltime-estimate boundary
	// before its (possibly dilated) work finished.
	StateKilled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one batch job. Times are in seconds, memory in MiB. The
// scheduler sees Submit, Nodes, CoresPerNode, MemPerNode and Estimate;
// BaseRuntime is ground truth known only to the simulator.
type Job struct {
	// ID is a unique positive identifier (SWF job number).
	ID int
	// User and Group identify the submitter (SWF fields; used by
	// fairness metrics and the WFP policy).
	User, Group int
	// Submit is the arrival time in seconds since trace start.
	Submit int64
	// Nodes is the number of whole nodes requested (exclusive use).
	Nodes int
	// CoresPerNode is the per-node core request; 0 means "all cores".
	CoresPerNode int
	// MemPerNode is the requested per-node memory footprint in MiB.
	MemPerNode int64
	// Estimate is the user-provided walltime limit in seconds. A job
	// still running at Start+Estimate is killed.
	Estimate int64
	// BaseRuntime is the true runtime in seconds on all-local memory.
	// The effective runtime may be longer when part of the footprint
	// is served from a disaggregated pool.
	BaseRuntime int64
}

// Validate reports the first structural problem with the job, or nil.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("workload: job %d: non-positive id", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("workload: job %d: negative submit time %d", j.ID, j.Submit)
	case j.Nodes <= 0:
		return fmt.Errorf("workload: job %d: non-positive node count %d", j.ID, j.Nodes)
	case j.CoresPerNode < 0:
		return fmt.Errorf("workload: job %d: negative cores/node %d", j.ID, j.CoresPerNode)
	case j.MemPerNode < 0:
		return fmt.Errorf("workload: job %d: negative mem/node %d", j.ID, j.MemPerNode)
	case j.Estimate <= 0:
		return fmt.Errorf("workload: job %d: non-positive estimate %d", j.ID, j.Estimate)
	case j.BaseRuntime <= 0:
		return fmt.Errorf("workload: job %d: non-positive runtime %d", j.ID, j.BaseRuntime)
	}
	return nil
}

// TotalMem returns the job's aggregate memory footprint in MiB.
func (j *Job) TotalMem() int64 { return int64(j.Nodes) * j.MemPerNode }

// Accuracy returns the user's runtime-estimate accuracy
// BaseRuntime/Estimate, the standard trace metric (≤ 1 for
// overestimating users, > 1 would mean the job gets killed).
func (j *Job) Accuracy() float64 {
	if j.Estimate == 0 {
		return 0
	}
	return float64(j.BaseRuntime) / float64(j.Estimate)
}

// Workload is an ordered batch of jobs plus optional provenance.
type Workload struct {
	// Name labels the trace (file name or generator signature).
	Name string
	// Jobs is sorted by (Submit, ID).
	Jobs []*Job
}

// Validate checks every job and the arrival ordering.
func (w *Workload) Validate() error {
	var prev int64 = -1
	seen := make(map[int]bool, len(w.Jobs))
	for _, j := range w.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("workload: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
		if j.Submit < prev {
			return fmt.Errorf("workload: job %d arrives at %d before previous arrival %d",
				j.ID, j.Submit, prev)
		}
		prev = j.Submit
	}
	return nil
}

// Sort orders jobs by (Submit, ID) in place.
func (w *Workload) Sort() {
	sort.SliceStable(w.Jobs, func(i, k int) bool {
		a, b := w.Jobs[i], w.Jobs[k]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.ID < b.ID
	})
}

// Span returns the interval [first submit, last submit] covered by the
// workload, or (0, 0) when empty.
func (w *Workload) Span() (first, last int64) {
	if len(w.Jobs) == 0 {
		return 0, 0
	}
	return w.Jobs[0].Submit, w.Jobs[len(w.Jobs)-1].Submit
}

// Clone returns a deep copy; simulations mutate nothing in Workload, but
// sweeps that rescale estimates need private copies.
func (w *Workload) Clone() *Workload {
	out := &Workload{Name: w.Name, Jobs: make([]*Job, len(w.Jobs))}
	for i, j := range w.Jobs {
		cp := *j
		out.Jobs[i] = &cp
	}
	return out
}
