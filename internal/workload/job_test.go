package workload

import (
	"strings"
	"testing"
)

func validJob() *Job {
	return &Job{
		ID: 1, User: 3, Group: 1, Submit: 100,
		Nodes: 4, MemPerNode: 8192, Estimate: 3600, BaseRuntime: 1800,
	}
}

func TestJobValidateOK(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestJobValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		want   string
	}{
		{"zero id", func(j *Job) { j.ID = 0 }, "non-positive id"},
		{"negative submit", func(j *Job) { j.Submit = -1 }, "negative submit"},
		{"zero nodes", func(j *Job) { j.Nodes = 0 }, "non-positive node count"},
		{"negative cores", func(j *Job) { j.CoresPerNode = -1 }, "negative cores"},
		{"negative mem", func(j *Job) { j.MemPerNode = -1 }, "negative mem"},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }, "non-positive estimate"},
		{"zero runtime", func(j *Job) { j.BaseRuntime = 0 }, "non-positive runtime"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := validJob()
			c.mutate(j)
			err := j.Validate()
			if err == nil {
				t.Fatal("invalid job accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestJobDerived(t *testing.T) {
	j := validJob()
	if got := j.TotalMem(); got != 4*8192 {
		t.Fatalf("TotalMem = %d, want %d", got, 4*8192)
	}
	if got := j.Accuracy(); got != 0.5 {
		t.Fatalf("Accuracy = %g, want 0.5", got)
	}
	j.Estimate = 0
	if got := j.Accuracy(); got != 0 {
		t.Fatalf("Accuracy with zero estimate = %g, want 0", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StatePending:   "pending",
		StateRunning:   "running",
		StateCompleted: "completed",
		StateKilled:    "killed",
		State(99):      "state(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := &Workload{Jobs: []*Job{validJob()}}
	if err := w.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}

	dup := validJob()
	w = &Workload{Jobs: []*Job{validJob(), dup}}
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate IDs not rejected: %v", err)
	}

	a, b := validJob(), validJob()
	b.ID = 2
	b.Submit = a.Submit - 50
	w = &Workload{Jobs: []*Job{a, b}}
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "before previous arrival") {
		t.Fatalf("unsorted arrivals not rejected: %v", err)
	}
}

func TestWorkloadSort(t *testing.T) {
	a, b, c := validJob(), validJob(), validJob()
	a.ID, a.Submit = 3, 200
	b.ID, b.Submit = 1, 100
	c.ID, c.Submit = 2, 100
	w := &Workload{Jobs: []*Job{a, b, c}}
	w.Sort()
	gotIDs := []int{w.Jobs[0].ID, w.Jobs[1].ID, w.Jobs[2].ID}
	if gotIDs[0] != 1 || gotIDs[1] != 2 || gotIDs[2] != 3 {
		t.Fatalf("sorted order = %v, want [1 2 3]", gotIDs)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("sorted workload invalid: %v", err)
	}
}

func TestWorkloadSpan(t *testing.T) {
	var empty Workload
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Fatalf("empty span = (%d,%d), want (0,0)", f, l)
	}
	a, b := validJob(), validJob()
	b.ID, b.Submit = 2, 500
	w := &Workload{Jobs: []*Job{a, b}}
	if f, l := w.Span(); f != 100 || l != 500 {
		t.Fatalf("span = (%d,%d), want (100,500)", f, l)
	}
}

func TestWorkloadCloneIsDeep(t *testing.T) {
	w := &Workload{Name: "x", Jobs: []*Job{validJob()}}
	cp := w.Clone()
	cp.Jobs[0].Estimate = 1
	if w.Jobs[0].Estimate == 1 {
		t.Fatal("Clone shares job pointers with the original")
	}
	if cp.Name != "x" || len(cp.Jobs) != 1 {
		t.Fatalf("clone lost data: %+v", cp)
	}
}
