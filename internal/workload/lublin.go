package workload

import (
	"fmt"
	"math"

	"dismem/internal/stats"
)

// LublinConfig parameterises a workload model following Lublin &
// Feitelson, "The workload on parallel supercomputers: modeling the
// characteristics of rigid jobs" (JPDC 2003): two-stage log-uniform job
// sizes with power-of-two emphasis, hyper-Gamma runtimes whose mixing
// probability depends on job size, and a Gamma daily arrival cycle.
//
// This is the higher-fidelity alternative to the simpler calibrated
// generator in GenConfig; both emit the same Job type, and the memory
// model (absent from the 2003 paper, which predates the disaggregation
// question) is borrowed from GenConfig's bimodal footprint.
type LublinConfig struct {
	// Jobs and Seed as in GenConfig.
	Jobs int
	Seed uint64
	// MaxNodes bounds job width.
	MaxNodes int

	// Size model: log2(size) ~ two-stage uniform over [ULow, UHi] with
	// mid-point break UMed and probability UProb of the low range;
	// jobs are rounded to a power of two with probability Pow2Prob.
	ULow, UMed, UHi float64
	UProb, Pow2Prob float64

	// Runtime model: hyper-Gamma with size-dependent mixing
	// p(nodes) = PA*nodes + PB (clamped to [0,1]); the low component is
	// Gamma(A1,B1), the high component Gamma(A2,B2), runtimes in
	// seconds, truncated at MaxRuntime.
	A1, B1, A2, B2 float64
	PA, PB         float64
	MaxRuntime     int64

	// Arrival model: per-bucket Poisson arrivals where the rate follows
	// the classic daily cycle weights (peak in working hours); the
	// whole trace is scaled so the mean inter-arrival equals
	// MeanInterarrival seconds.
	MeanInterarrival float64

	// Memory and estimates: reused from the calibrated generator so
	// the disaggregation experiments remain meaningful.
	MemSmall, MemLarge stats.Dist
	LargeMemFraction   float64
	MaxMemPerNode      int64
	EstimateAccuracy   float64
	EstimateQuantum    int64
	Users              int
}

// DefaultLublinConfig returns the published model constants (batch
// partition) scaled to maxNodes, with this repository's default memory
// and estimate models attached.
func DefaultLublinConfig(n int, seed uint64, maxNodes int) LublinConfig {
	base := DefaultGenConfig(n, seed, maxNodes)
	uHi := math.Log2(float64(maxNodes))
	return LublinConfig{
		Jobs: n, Seed: seed, MaxNodes: maxNodes,
		// Size constants from the paper (uLow≈0.8, uMed≈uHi-2.5).
		ULow: 0.8, UMed: uHi - 2.5, UHi: uHi,
		UProb: 0.7, Pow2Prob: 0.24,
		// Runtime hyper-Gamma constants (batch model, seconds).
		A1: 4.2, B1: 400, A2: 12, B2: 800,
		PA: -0.0054, PB: 0.78,
		MaxRuntime:       base.MaxRuntime,
		MeanInterarrival: base.MeanInterarrival,
		MemSmall:         base.MemSmall,
		MemLarge:         base.MemLarge,
		LargeMemFraction: base.LargeMemFraction,
		MaxMemPerNode:    base.MaxMemPerNode,
		EstimateAccuracy: base.EstimateAccuracy,
		EstimateQuantum:  base.EstimateQuantum,
		Users:            base.Users,
	}
}

// Validate reports the first invalid parameter, or nil.
func (c *LublinConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("workload: lublin: jobs %d <= 0", c.Jobs)
	case c.MaxNodes <= 0:
		return fmt.Errorf("workload: lublin: max nodes %d <= 0", c.MaxNodes)
	case c.UHi < c.ULow:
		return fmt.Errorf("workload: lublin: uHi %g < uLow %g", c.UHi, c.ULow)
	case c.UProb < 0 || c.UProb > 1:
		return fmt.Errorf("workload: lublin: uProb %g outside [0,1]", c.UProb)
	case c.Pow2Prob < 0 || c.Pow2Prob > 1:
		return fmt.Errorf("workload: lublin: pow2Prob %g outside [0,1]", c.Pow2Prob)
	case c.A1 <= 0 || c.B1 <= 0 || c.A2 <= 0 || c.B2 <= 0:
		return fmt.Errorf("workload: lublin: non-positive gamma parameters")
	case c.MaxRuntime <= 0:
		return fmt.Errorf("workload: lublin: max runtime %d <= 0", c.MaxRuntime)
	case c.MeanInterarrival <= 0:
		return fmt.Errorf("workload: lublin: mean interarrival %g <= 0", c.MeanInterarrival)
	case c.MaxMemPerNode <= 0:
		return fmt.Errorf("workload: lublin: max mem %d <= 0", c.MaxMemPerNode)
	case c.EstimateAccuracy <= 0 || c.EstimateAccuracy > 1:
		return fmt.Errorf("workload: lublin: estimate accuracy %g outside (0,1]", c.EstimateAccuracy)
	case c.Users <= 0:
		return fmt.Errorf("workload: lublin: users %d <= 0", c.Users)
	}
	return nil
}

// dailyCycleWeights is the relative arrival intensity per hour of day
// (normalised at use); the shape follows the published daily cycle:
// low at night, ramp through the morning, peak in the afternoon.
var dailyCycleWeights = [24]float64{
	0.28, 0.22, 0.20, 0.19, 0.18, 0.20,
	0.30, 0.50, 0.75, 1.00, 1.15, 1.20,
	1.18, 1.22, 1.25, 1.20, 1.10, 0.95,
	0.85, 0.75, 0.62, 0.50, 0.40, 0.33,
}

// GenerateLublin produces a workload from the Lublin-Feitelson model.
// It is the materialising wrapper over LublinStream: pulling a fresh
// stream cfg.Jobs times yields the identical job sequence.
func GenerateLublin(cfg LublinConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := NewLublinStream(cfg)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("lublin(n=%d,seed=%d)", cfg.Jobs, cfg.Seed)
	return drainStream(name, "lublin generator", cfg.Jobs, st.Next)
}

// lublinSize draws a job width: two-stage log-uniform, snapped to a
// power of two with probability Pow2Prob.
func lublinSize(r *stats.RNG, cfg *LublinConfig) int {
	var l float64
	if r.Float64() < cfg.UProb {
		l = cfg.ULow + r.Float64()*(cfg.UMed-cfg.ULow)
	} else {
		l = cfg.UMed + r.Float64()*(cfg.UHi-cfg.UMed)
	}
	n := int(math.Round(math.Pow(2, l)))
	if r.Float64() < cfg.Pow2Prob {
		n = 1 << int(math.Round(l))
	}
	if n < 1 {
		n = 1
	}
	if n > cfg.MaxNodes {
		n = cfg.MaxNodes
	}
	return n
}

// lublinRuntime draws a runtime from the size-dependent hyper-Gamma.
func lublinRuntime(r *stats.RNG, cfg *LublinConfig, nodes int) int64 {
	p := cfg.PA*float64(nodes) + cfg.PB
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	hg := stats.HyperGamma{
		Low:  stats.Gamma{Alpha: cfg.A1, Theta: cfg.B1},
		High: stats.Gamma{Alpha: cfg.A2, Theta: cfg.B2},
		P:    p,
	}
	rt := int64(hg.Sample(r))
	if rt < 1 {
		rt = 1
	}
	if rt > cfg.MaxRuntime {
		rt = cfg.MaxRuntime
	}
	return rt
}

// MustGenerateLublin is GenerateLublin, panicking on error.
func MustGenerateLublin(cfg LublinConfig) *Workload {
	w, err := GenerateLublin(cfg)
	if err != nil {
		panic(err)
	}
	return w
}
