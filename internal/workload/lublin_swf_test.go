package workload

import (
	"bytes"
	"testing"
)

func TestLublinSWFRoundTrip(t *testing.T) {
	// The Lublin generator's output must survive the archive format
	// like any other trace.
	orig := MustGenerateLublin(DefaultLublinConfig(150, 23, 64))
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSWF(&buf, SWFReadOptions{})
	if err != nil || skipped != 0 {
		t.Fatalf("read back: %v (skipped %d)", err, skipped)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(got.Jobs), len(orig.Jobs))
	}
	for i := range orig.Jobs {
		a, b := orig.Jobs[i], got.Jobs[i]
		if a.ID != b.ID || a.Nodes != b.Nodes || a.BaseRuntime != b.BaseRuntime ||
			a.MemPerNode != b.MemPerNode {
			t.Fatalf("job %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestLublinSummary(t *testing.T) {
	w := MustGenerateLublin(DefaultLublinConfig(500, 29, 128))
	s := Summarize(w, 64*1024)
	if s.Jobs != 500 {
		t.Fatalf("summary jobs = %d", s.Jobs)
	}
	if s.Runtime.Mean() <= 0 || s.MemNode.Mean() <= 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
}
