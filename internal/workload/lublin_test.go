package workload

import (
	"math"
	"testing"
)

func TestLublinValidAndDeterministic(t *testing.T) {
	cfg := DefaultLublinConfig(800, 3, 256)
	a := MustGenerateLublin(cfg)
	b := MustGenerateLublin(cfg)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 800 {
		t.Fatalf("generated %d jobs, want 800", len(a.Jobs))
	}
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("same seed diverged at job %d", i)
		}
	}
}

func TestLublinEnvelopes(t *testing.T) {
	cfg := DefaultLublinConfig(3000, 7, 128)
	w := MustGenerateLublin(cfg)
	for _, j := range w.Jobs {
		if j.Nodes < 1 || j.Nodes > cfg.MaxNodes {
			t.Fatalf("job %d: nodes %d outside [1,%d]", j.ID, j.Nodes, cfg.MaxNodes)
		}
		if j.BaseRuntime < 1 || j.BaseRuntime > cfg.MaxRuntime {
			t.Fatalf("job %d: runtime %d outside bounds", j.ID, j.BaseRuntime)
		}
		if j.Estimate < j.BaseRuntime {
			t.Fatalf("job %d: estimate below runtime", j.ID)
		}
		if j.MemPerNode < 1 || j.MemPerNode > cfg.MaxMemPerNode {
			t.Fatalf("job %d: memory %d outside bounds", j.ID, j.MemPerNode)
		}
	}
}

func TestLublinSizeDependentRuntimes(t *testing.T) {
	// The mixing probability p = PA*nodes + PB falls with size, so
	// wide jobs draw from the long-runtime component more often: mean
	// runtime of wide jobs must exceed that of serial jobs.
	cfg := DefaultLublinConfig(20000, 11, 256)
	w := MustGenerateLublin(cfg)
	var narrow, wide struct {
		sum float64
		n   int
	}
	for _, j := range w.Jobs {
		if j.Nodes <= 2 {
			narrow.sum += float64(j.BaseRuntime)
			narrow.n++
		} else if j.Nodes >= 64 {
			wide.sum += float64(j.BaseRuntime)
			wide.n++
		}
	}
	if narrow.n == 0 || wide.n == 0 {
		t.Fatalf("size strata empty: %d narrow, %d wide", narrow.n, wide.n)
	}
	if wide.sum/float64(wide.n) <= narrow.sum/float64(narrow.n) {
		t.Fatalf("wide jobs (%0.f s) not longer than narrow (%0.f s)",
			wide.sum/float64(wide.n), narrow.sum/float64(narrow.n))
	}
}

func TestLublinDailyCycle(t *testing.T) {
	cfg := DefaultLublinConfig(30000, 13, 64)
	w := MustGenerateLublin(cfg)
	// Working hours (9-17) must receive clearly more arrivals than the
	// small hours (1-5).
	var day, night int
	for _, j := range w.Jobs {
		h := (j.Submit % 86400) / 3600
		switch {
		case h >= 9 && h < 17:
			day++
		case h >= 1 && h < 5:
			night++
		}
	}
	// Normalise per hour: 8 day hours vs 4 night hours.
	dayRate, nightRate := float64(day)/8, float64(night)/4
	if dayRate < 1.5*nightRate {
		t.Fatalf("daily cycle too flat: day %.0f/h vs night %.0f/h", dayRate, nightRate)
	}
}

func TestLublinMeanInterarrival(t *testing.T) {
	cfg := DefaultLublinConfig(20000, 17, 64)
	w := MustGenerateLublin(cfg)
	first, last := w.Span()
	gap := float64(last-first) / float64(len(w.Jobs)-1)
	// The cycle modulation preserves the mean within sampling noise.
	if math.Abs(gap-cfg.MeanInterarrival)/cfg.MeanInterarrival > 0.15 {
		t.Fatalf("mean inter-arrival %.1f, want ~%.1f", gap, cfg.MeanInterarrival)
	}
}

func TestLublinValidateErrors(t *testing.T) {
	bad := []func(*LublinConfig){
		func(c *LublinConfig) { c.Jobs = 0 },
		func(c *LublinConfig) { c.MaxNodes = 0 },
		func(c *LublinConfig) { c.UHi = c.ULow - 1 },
		func(c *LublinConfig) { c.UProb = 2 },
		func(c *LublinConfig) { c.Pow2Prob = -0.1 },
		func(c *LublinConfig) { c.A1 = 0 },
		func(c *LublinConfig) { c.MaxRuntime = 0 },
		func(c *LublinConfig) { c.MeanInterarrival = 0 },
		func(c *LublinConfig) { c.EstimateAccuracy = 0 },
		func(c *LublinConfig) { c.Users = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultLublinConfig(10, 1, 8)
		mutate(&cfg)
		if _, err := GenerateLublin(cfg); err == nil {
			t.Errorf("bad lublin config %d accepted", i)
		}
	}
}

func TestLublinPowerOfTwoEmphasis(t *testing.T) {
	cfg := DefaultLublinConfig(20000, 19, 256)
	w := MustGenerateLublin(cfg)
	pow2 := 0
	for _, j := range w.Jobs {
		if j.Nodes&(j.Nodes-1) == 0 {
			pow2++
		}
	}
	frac := float64(pow2) / float64(len(w.Jobs))
	// Rounded log-uniform sizes plus the explicit 24% snap give a
	// clear power-of-two excess over the ~3% a uniform draw would give.
	if frac < 0.3 {
		t.Fatalf("power-of-two fraction %.2f, want > 0.3", frac)
	}
}
