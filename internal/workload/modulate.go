package workload

// ModulateArrivals rescales a workload's arrival process by a
// time-varying rate multiplier: a gap between consecutive submissions
// is divided by rate(t) evaluated at the (already transformed) time the
// gap starts, so rate > 1 compresses arrivals (a surge) and rate < 1
// stretches them (a lull). This is the same deterministic
// gap-stretching transform the synthetic generator applies for its
// diurnal cycle, now available for any trace — synthetic, Lublin, or
// imported SWF.
//
// The input workload is not mutated; the returned clone preserves job
// IDs, users and resource demands, only Submit changes. Because rate is
// strictly positive, gaps keep their sign and the output stays sorted
// by (Submit, ID).
func ModulateArrivals(w *Workload, rate func(t float64) float64) *Workload {
	out := w.Clone()
	if len(out.Jobs) == 0 || rate == nil {
		return out
	}
	var prev int64 // previous original submit time
	t := 0.0       // transformed clock
	for _, j := range out.Jobs {
		gap := float64(j.Submit - prev)
		prev = j.Submit
		r := rate(t)
		if r < 1e-9 {
			r = 1e-9 // keep the transform finite for pathological rates
		}
		t += gap / r
		j.Submit = int64(t)
	}
	if w.Name != "" {
		out.Name = w.Name + "+modulated"
	}
	return out
}
