package workload

import (
	"math"
	"testing"
)

func arrivalJobs(submits ...int64) *Workload {
	w := &Workload{Name: "t"}
	for i, s := range submits {
		w.Jobs = append(w.Jobs, &Job{
			ID: i + 1, Submit: s, Nodes: 1, MemPerNode: 1, Estimate: 10, BaseRuntime: 5,
		})
	}
	return w
}

// TestModulateConstantRate halves every arrival time at rate 2.
func TestModulateConstantRate(t *testing.T) {
	w := arrivalJobs(0, 100, 300, 1000)
	out := ModulateArrivals(w, func(float64) float64 { return 2 })
	want := []int64{0, 50, 150, 500}
	for i, j := range out.Jobs {
		if j.Submit != want[i] {
			t.Errorf("job %d submit = %d, want %d", j.ID, j.Submit, want[i])
		}
	}
	// Original untouched.
	if w.Jobs[1].Submit != 100 {
		t.Fatalf("input workload mutated: %d", w.Jobs[1].Submit)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("modulated workload invalid: %v", err)
	}
}

// TestModulateSurgeWindow compresses only gaps starting inside the
// window (rate evaluated on the transformed clock).
func TestModulateSurgeWindow(t *testing.T) {
	w := arrivalJobs(0, 100, 200, 300)
	rate := func(tm float64) float64 {
		if tm >= 100 && tm < 150 {
			return 2
		}
		return 1
	}
	out := ModulateArrivals(w, rate)
	// gaps: 0,100,100,100 → times 0,100 (rate 1 at t=0), 150 (rate 2 at
	// t=100), 250 (rate 1 at t=150).
	want := []int64{0, 100, 150, 250}
	for i, j := range out.Jobs {
		if j.Submit != want[i] {
			t.Errorf("job %d submit = %d, want %d", j.ID, j.Submit, want[i])
		}
	}
}

// TestModulateKeepsOrderUnderDiurnal keeps arrivals sorted for a
// sinusoidal rate with amplitude < 1.
func TestModulateKeepsOrderUnderDiurnal(t *testing.T) {
	w := MustGenerate(DefaultGenConfig(500, 7, 256))
	rate := func(tm float64) float64 {
		return 1 + 0.9*math.Sin(2*math.Pi*tm/86400)
	}
	out := ModulateArrivals(w, rate)
	if err := out.Validate(); err != nil {
		t.Fatalf("modulated workload invalid: %v", err)
	}
	if out.Name != w.Name+"+modulated" {
		t.Errorf("name = %q", out.Name)
	}
	// Deterministic: the same transform twice is bit-identical.
	again := ModulateArrivals(w, rate)
	for i := range out.Jobs {
		if out.Jobs[i].Submit != again.Jobs[i].Submit {
			t.Fatalf("nondeterministic transform at job %d", i)
		}
	}
}

// TestModulateDegenerate keeps empty and nil-rate inputs intact.
func TestModulateDegenerate(t *testing.T) {
	empty := ModulateArrivals(&Workload{}, func(float64) float64 { return 2 })
	if len(empty.Jobs) != 0 {
		t.Fatal("empty workload grew jobs")
	}
	w := arrivalJobs(5, 10)
	same := ModulateArrivals(w, nil)
	if same.Jobs[0].Submit != 5 || same.Jobs[1].Submit != 10 {
		t.Fatal("nil rate should be identity")
	}
	// A pathologically small rate is floored, not divided to +Inf.
	floored := ModulateArrivals(w, func(float64) float64 { return 0 })
	if floored.Jobs[1].Submit < 0 {
		t.Fatal("overflowed submit")
	}
}
