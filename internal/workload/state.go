package workload

import (
	"fmt"

	"dismem/internal/stats"
)

// This file is the durable-checkpoint face of the generator streams:
// portable, JSON-friendly state for GenStream and LublinStream plus
// validated constructors. The configs travel through GenConfigState /
// LublinConfigState because GenConfig embeds stats.Dist interface
// values, which JSON cannot round-trip directly; everything derived
// (Zipf table, distribution objects, cycle normalisation) is rebuilt
// by the ordinary constructors on restore, and only the six RNG states
// plus the cursor (now, i) are overwritten, so a restored stream
// produces bit-for-bit the job sequence the captured one would have.

// GenConfigState mirrors GenConfig with serializable distributions.
type GenConfigState struct {
	Jobs              int              `json:"jobs"`
	Seed              uint64           `json:"seed"`
	MeanInterarrival  float64          `json:"meanInterarrival"`
	ArrivalBurstiness float64          `json:"arrivalBurstiness"`
	DiurnalAmplitude  float64          `json:"diurnalAmplitude,omitempty"`
	MaxNodes          int              `json:"maxNodes"`
	SizeZipfExponent  float64          `json:"sizeZipfExponent,omitempty"`
	SerialFraction    float64          `json:"serialFraction,omitempty"`
	RuntimeLogMean    float64          `json:"runtimeLogMean"`
	RuntimeLogSigma   float64          `json:"runtimeLogSigma"`
	MaxRuntime        int64            `json:"maxRuntime"`
	MemSmall          *stats.DistState `json:"memSmall,omitempty"`
	MemLarge          *stats.DistState `json:"memLarge,omitempty"`
	LargeMemFraction  float64          `json:"largeMemFraction,omitempty"`
	MaxMemPerNode     int64            `json:"maxMemPerNode"`
	EstimateAccuracy  float64          `json:"estimateAccuracy"`
	EstimateQuantum   int64            `json:"estimateQuantum,omitempty"`
	Users             int              `json:"users"`
}

// GenConfigToState captures cfg.
func GenConfigToState(cfg GenConfig) (GenConfigState, error) {
	small, err := stats.DistToState(cfg.MemSmall)
	if err != nil {
		return GenConfigState{}, fmt.Errorf("workload: gen config MemSmall: %w", err)
	}
	large, err := stats.DistToState(cfg.MemLarge)
	if err != nil {
		return GenConfigState{}, fmt.Errorf("workload: gen config MemLarge: %w", err)
	}
	return GenConfigState{
		Jobs: cfg.Jobs, Seed: cfg.Seed,
		MeanInterarrival: cfg.MeanInterarrival, ArrivalBurstiness: cfg.ArrivalBurstiness,
		DiurnalAmplitude: cfg.DiurnalAmplitude, MaxNodes: cfg.MaxNodes,
		SizeZipfExponent: cfg.SizeZipfExponent, SerialFraction: cfg.SerialFraction,
		RuntimeLogMean: cfg.RuntimeLogMean, RuntimeLogSigma: cfg.RuntimeLogSigma,
		MaxRuntime: cfg.MaxRuntime, MemSmall: small, MemLarge: large,
		LargeMemFraction: cfg.LargeMemFraction, MaxMemPerNode: cfg.MaxMemPerNode,
		EstimateAccuracy: cfg.EstimateAccuracy, EstimateQuantum: cfg.EstimateQuantum,
		Users: cfg.Users,
	}, nil
}

// GenConfigFromState rebuilds a GenConfig.
func GenConfigFromState(st GenConfigState) (GenConfig, error) {
	small, err := stats.DistFromState(st.MemSmall)
	if err != nil {
		return GenConfig{}, fmt.Errorf("workload: gen config state MemSmall: %w", err)
	}
	large, err := stats.DistFromState(st.MemLarge)
	if err != nil {
		return GenConfig{}, fmt.Errorf("workload: gen config state MemLarge: %w", err)
	}
	return GenConfig{
		Jobs: st.Jobs, Seed: st.Seed,
		MeanInterarrival: st.MeanInterarrival, ArrivalBurstiness: st.ArrivalBurstiness,
		DiurnalAmplitude: st.DiurnalAmplitude, MaxNodes: st.MaxNodes,
		SizeZipfExponent: st.SizeZipfExponent, SerialFraction: st.SerialFraction,
		RuntimeLogMean: st.RuntimeLogMean, RuntimeLogSigma: st.RuntimeLogSigma,
		MaxRuntime: st.MaxRuntime, MemSmall: small, MemLarge: large,
		LargeMemFraction: st.LargeMemFraction, MaxMemPerNode: st.MaxMemPerNode,
		EstimateAccuracy: st.EstimateAccuracy, EstimateQuantum: st.EstimateQuantum,
		Users: st.Users,
	}, nil
}

// LublinConfigState mirrors LublinConfig with serializable
// distributions.
type LublinConfigState struct {
	Jobs             int              `json:"jobs"`
	Seed             uint64           `json:"seed"`
	MaxNodes         int              `json:"maxNodes"`
	ULow             float64          `json:"uLow"`
	UMed             float64          `json:"uMed"`
	UHi              float64          `json:"uHi"`
	UProb            float64          `json:"uProb"`
	Pow2Prob         float64          `json:"pow2Prob"`
	A1               float64          `json:"a1"`
	B1               float64          `json:"b1"`
	A2               float64          `json:"a2"`
	B2               float64          `json:"b2"`
	PA               float64          `json:"pa"`
	PB               float64          `json:"pb"`
	MaxRuntime       int64            `json:"maxRuntime"`
	MeanInterarrival float64          `json:"meanInterarrival"`
	MemSmall         *stats.DistState `json:"memSmall,omitempty"`
	MemLarge         *stats.DistState `json:"memLarge,omitempty"`
	LargeMemFraction float64          `json:"largeMemFraction,omitempty"`
	MaxMemPerNode    int64            `json:"maxMemPerNode"`
	EstimateAccuracy float64          `json:"estimateAccuracy"`
	EstimateQuantum  int64            `json:"estimateQuantum,omitempty"`
	Users            int              `json:"users"`
}

// LublinConfigToState captures cfg.
func LublinConfigToState(cfg LublinConfig) (LublinConfigState, error) {
	small, err := stats.DistToState(cfg.MemSmall)
	if err != nil {
		return LublinConfigState{}, fmt.Errorf("workload: lublin config MemSmall: %w", err)
	}
	large, err := stats.DistToState(cfg.MemLarge)
	if err != nil {
		return LublinConfigState{}, fmt.Errorf("workload: lublin config MemLarge: %w", err)
	}
	return LublinConfigState{
		Jobs: cfg.Jobs, Seed: cfg.Seed, MaxNodes: cfg.MaxNodes,
		ULow: cfg.ULow, UMed: cfg.UMed, UHi: cfg.UHi,
		UProb: cfg.UProb, Pow2Prob: cfg.Pow2Prob,
		A1: cfg.A1, B1: cfg.B1, A2: cfg.A2, B2: cfg.B2,
		PA: cfg.PA, PB: cfg.PB,
		MaxRuntime: cfg.MaxRuntime, MeanInterarrival: cfg.MeanInterarrival,
		MemSmall: small, MemLarge: large,
		LargeMemFraction: cfg.LargeMemFraction, MaxMemPerNode: cfg.MaxMemPerNode,
		EstimateAccuracy: cfg.EstimateAccuracy, EstimateQuantum: cfg.EstimateQuantum,
		Users: cfg.Users,
	}, nil
}

// LublinConfigFromState rebuilds a LublinConfig.
func LublinConfigFromState(st LublinConfigState) (LublinConfig, error) {
	small, err := stats.DistFromState(st.MemSmall)
	if err != nil {
		return LublinConfig{}, fmt.Errorf("workload: lublin config state MemSmall: %w", err)
	}
	large, err := stats.DistFromState(st.MemLarge)
	if err != nil {
		return LublinConfig{}, fmt.Errorf("workload: lublin config state MemLarge: %w", err)
	}
	return LublinConfig{
		Jobs: st.Jobs, Seed: st.Seed, MaxNodes: st.MaxNodes,
		ULow: st.ULow, UMed: st.UMed, UHi: st.UHi,
		UProb: st.UProb, Pow2Prob: st.Pow2Prob,
		A1: st.A1, B1: st.B1, A2: st.A2, B2: st.B2,
		PA: st.PA, PB: st.PB,
		MaxRuntime: st.MaxRuntime, MeanInterarrival: st.MeanInterarrival,
		MemSmall: small, MemLarge: large,
		LargeMemFraction: st.LargeMemFraction, MaxMemPerNode: st.MaxMemPerNode,
		EstimateAccuracy: st.EstimateAccuracy, EstimateQuantum: st.EstimateQuantum,
		Users: st.Users,
	}, nil
}

// GenStreamState is the portable serialized form of a GenStream.
type GenStreamState struct {
	Cfg        GenConfigState `json:"cfg"`
	ArrivalRNG stats.RNGState `json:"arrivalRng"`
	SizeRNG    stats.RNGState `json:"sizeRng"`
	RuntimeRNG stats.RNGState `json:"runtimeRng"`
	MemRNG     stats.RNGState `json:"memRng"`
	EstRNG     stats.RNGState `json:"estRng"`
	UserRNG    stats.RNGState `json:"userRng"`
	Now        float64        `json:"now"`
	I          int            `json:"i"`
}

// State captures the stream at its current cursor.
func (s *GenStream) State() (*GenStreamState, error) {
	cfg, err := GenConfigToState(s.cfg)
	if err != nil {
		return nil, err
	}
	return &GenStreamState{
		Cfg:        cfg,
		ArrivalRNG: s.arrivalRNG.State(), SizeRNG: s.sizeRNG.State(),
		RuntimeRNG: s.runtimeRNG.State(), MemRNG: s.memRNG.State(),
		EstRNG: s.estRNG.State(), UserRNG: s.userRNG.State(),
		Now: s.now, I: s.i,
	}, nil
}

// GenStreamFromState rebuilds a stream at the captured cursor.
func GenStreamFromState(st *GenStreamState) (*GenStream, error) {
	cfg, err := GenConfigFromState(st.Cfg)
	if err != nil {
		return nil, err
	}
	s, err := NewGenStream(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: gen stream state: %w", err)
	}
	if st.I < 0 {
		return nil, fmt.Errorf("workload: gen stream state cursor i=%d < 0", st.I)
	}
	if s.arrivalRNG, err = stats.RNGFromState(st.ArrivalRNG); err != nil {
		return nil, err
	}
	if s.sizeRNG, err = stats.RNGFromState(st.SizeRNG); err != nil {
		return nil, err
	}
	if s.runtimeRNG, err = stats.RNGFromState(st.RuntimeRNG); err != nil {
		return nil, err
	}
	if s.memRNG, err = stats.RNGFromState(st.MemRNG); err != nil {
		return nil, err
	}
	if s.estRNG, err = stats.RNGFromState(st.EstRNG); err != nil {
		return nil, err
	}
	if s.userRNG, err = stats.RNGFromState(st.UserRNG); err != nil {
		return nil, err
	}
	s.now, s.i = st.Now, st.I
	return s, nil
}

// LublinStreamState is the portable serialized form of a LublinStream.
type LublinStreamState struct {
	Cfg        LublinConfigState `json:"cfg"`
	ArrivalRNG stats.RNGState    `json:"arrivalRng"`
	SizeRNG    stats.RNGState    `json:"sizeRng"`
	RuntimeRNG stats.RNGState    `json:"runtimeRng"`
	MemRNG     stats.RNGState    `json:"memRng"`
	EstRNG     stats.RNGState    `json:"estRng"`
	UserRNG    stats.RNGState    `json:"userRng"`
	Now        float64           `json:"now"`
	I          int               `json:"i"`
}

// State captures the stream at its current cursor.
func (s *LublinStream) State() (*LublinStreamState, error) {
	cfg, err := LublinConfigToState(s.cfg)
	if err != nil {
		return nil, err
	}
	return &LublinStreamState{
		Cfg:        cfg,
		ArrivalRNG: s.arrivalRNG.State(), SizeRNG: s.sizeRNG.State(),
		RuntimeRNG: s.runtimeRNG.State(), MemRNG: s.memRNG.State(),
		EstRNG: s.estRNG.State(), UserRNG: s.userRNG.State(),
		Now: s.now, I: s.i,
	}, nil
}

// LublinStreamFromState rebuilds a stream at the captured cursor.
func LublinStreamFromState(st *LublinStreamState) (*LublinStream, error) {
	cfg, err := LublinConfigFromState(st.Cfg)
	if err != nil {
		return nil, err
	}
	s, err := NewLublinStream(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: lublin stream state: %w", err)
	}
	if st.I < 0 {
		return nil, fmt.Errorf("workload: lublin stream state cursor i=%d < 0", st.I)
	}
	if s.arrivalRNG, err = stats.RNGFromState(st.ArrivalRNG); err != nil {
		return nil, err
	}
	if s.sizeRNG, err = stats.RNGFromState(st.SizeRNG); err != nil {
		return nil, err
	}
	if s.runtimeRNG, err = stats.RNGFromState(st.RuntimeRNG); err != nil {
		return nil, err
	}
	if s.memRNG, err = stats.RNGFromState(st.MemRNG); err != nil {
		return nil, err
	}
	if s.estRNG, err = stats.RNGFromState(st.EstRNG); err != nil {
		return nil, err
	}
	if s.userRNG, err = stats.RNGFromState(st.UserRNG); err != nil {
		return nil, err
	}
	s.now, s.i = st.Now, st.I
	return s, nil
}
