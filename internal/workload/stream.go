package workload

import (
	"fmt"
	"math"

	"dismem/internal/stats"
)

// This file holds the lazy core of both synthetic generators. Each
// stream produces jobs one at a time in nondecreasing submit order with
// O(1) memory; Generate and GenerateLublin are thin materialising
// wrappers, so a stream pulled N times is the same job sequence a
// materialised N-job workload holds (pinned by tests). Streams are the
// engine-facing form: internal/source adapts them to arbitrary-length
// saturation and soak runs that never hold a full Workload in memory.

// GenStream lazily produces the calibrated synthetic workload. A
// cfg.Jobs of 0 means "produce forever"; otherwise the stream ends
// after cfg.Jobs jobs. Create with NewGenStream; not safe for
// concurrent use.
type GenStream struct {
	cfg GenConfig

	arrivalRNG, sizeRNG, runtimeRNG *stats.RNG
	memRNG, estRNG, userRNG         *stats.RNG
	sizeZipf                        *stats.Zipf
	interarrival                    stats.Weibull
	runtime                         stats.LogNormal

	now float64
	i   int
}

// NewGenStream validates cfg and primes the generator state. Unlike
// Generate, cfg.Jobs may be 0 (unbounded production).
func NewGenStream(cfg GenConfig) (*GenStream, error) {
	v := cfg
	if v.Jobs == 0 {
		v.Jobs = 1 // unbounded stream; satisfy the jobs>0 batch check
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if cfg.SizeZipfExponent == 0 {
		cfg.SizeZipfExponent = 1.4
	}
	if cfg.EstimateQuantum <= 0 {
		cfg.EstimateQuantum = 300
	}

	rng := stats.NewRNG(cfg.Seed)
	s := &GenStream{
		cfg:        cfg,
		arrivalRNG: rng.Split(),
		sizeRNG:    rng.Split(),
		runtimeRNG: rng.Split(),
		memRNG:     rng.Split(),
		estRNG:     rng.Split(),
		userRNG:    rng.Split(),
	}
	sizeClasses := int(math.Log2(float64(cfg.MaxNodes))) + 1
	s.sizeZipf = stats.NewZipf(sizeClasses, cfg.SizeZipfExponent)
	s.interarrival = stats.Weibull{
		K:      cfg.ArrivalBurstiness,
		Lambda: cfg.MeanInterarrival / weibullMeanFactor(cfg.ArrivalBurstiness),
	}
	s.runtime = stats.LogNormal{Mu: cfg.RuntimeLogMean, Sigma: cfg.RuntimeLogSigma}
	return s, nil
}

// Clone returns an independent copy of the stream at its current
// cursor: both produce the identical remaining job sequence. The RNG
// states are deep-copied; the Zipf table is immutable and shared. It
// backs source-level forking for simulation checkpoints.
func (s *GenStream) Clone() *GenStream {
	c := *s
	c.arrivalRNG = s.arrivalRNG.Clone()
	c.sizeRNG = s.sizeRNG.Clone()
	c.runtimeRNG = s.runtimeRNG.Clone()
	c.memRNG = s.memRNG.Clone()
	c.estRNG = s.estRNG.Clone()
	c.userRNG = s.userRNG.Clone()
	return &c
}

// Next produces the next job, or (nil, false) once cfg.Jobs jobs have
// been produced (never for an unbounded stream).
func (s *GenStream) Next() (*Job, bool) {
	if s.cfg.Jobs > 0 && s.i >= s.cfg.Jobs {
		return nil, false
	}
	s.i++
	gap := s.interarrival.Sample(s.arrivalRNG)
	if s.cfg.DiurnalAmplitude > 0 {
		// Thin arrivals at "night": stretch the gap when the
		// diurnal intensity is low at the current virtual hour.
		phase := 2 * math.Pi * math.Mod(s.now, 86400) / 86400
		intensity := 1 + s.cfg.DiurnalAmplitude*math.Sin(phase)
		gap /= intensity
	}
	s.now += gap

	j := &Job{
		ID:          s.i,
		User:        s.userRNG.Intn(s.cfg.Users),
		Submit:      int64(s.now),
		Nodes:       sampleNodes(s.sizeRNG, s.sizeZipf, s.cfg),
		MemPerNode:  sampleMem(s.memRNG, s.cfg),
		BaseRuntime: sampleRuntime(s.runtimeRNG, s.runtime, s.cfg),
	}
	j.Group = j.User % 8
	j.Estimate = sampleEstimate(s.estRNG, j.BaseRuntime, s.cfg)
	return j, true
}

// LublinStream lazily produces the Lublin–Feitelson workload. A
// cfg.Jobs of 0 means "produce forever". Create with NewLublinStream;
// not safe for concurrent use.
type LublinStream struct {
	cfg LublinConfig

	arrivalRNG, sizeRNG, runtimeRNG *stats.RNG
	memRNG, estRNG, userRNG         *stats.RNG
	cycleMean                       float64
	estCfg, memCfg                  GenConfig

	now float64
	i   int
}

// NewLublinStream validates cfg and primes the generator state. Unlike
// GenerateLublin, cfg.Jobs may be 0 (unbounded production).
func NewLublinStream(cfg LublinConfig) (*LublinStream, error) {
	v := cfg
	if v.Jobs == 0 {
		v.Jobs = 1
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if cfg.EstimateQuantum <= 0 {
		cfg.EstimateQuantum = 300
	}
	rng := stats.NewRNG(cfg.Seed)
	s := &LublinStream{
		cfg:        cfg,
		arrivalRNG: rng.Split(),
		sizeRNG:    rng.Split(),
		runtimeRNG: rng.Split(),
		memRNG:     rng.Split(),
		estRNG:     rng.Split(),
		userRNG:    rng.Split(),
	}
	// Pre-normalise the daily cycle to a mean weight of 1.
	var cycleSum float64
	for _, w := range dailyCycleWeights {
		cycleSum += w
	}
	s.cycleMean = cycleSum / 24
	s.estCfg = GenConfig{
		EstimateAccuracy: cfg.EstimateAccuracy,
		EstimateQuantum:  cfg.EstimateQuantum,
		MaxRuntime:       cfg.MaxRuntime,
	}
	s.memCfg = GenConfig{
		MemSmall: cfg.MemSmall, MemLarge: cfg.MemLarge,
		LargeMemFraction: cfg.LargeMemFraction, MaxMemPerNode: cfg.MaxMemPerNode,
	}
	return s, nil
}

// Clone returns an independent copy of the stream at its current
// cursor, like GenStream.Clone.
func (s *LublinStream) Clone() *LublinStream {
	c := *s
	c.arrivalRNG = s.arrivalRNG.Clone()
	c.sizeRNG = s.sizeRNG.Clone()
	c.runtimeRNG = s.runtimeRNG.Clone()
	c.memRNG = s.memRNG.Clone()
	c.estRNG = s.estRNG.Clone()
	c.userRNG = s.userRNG.Clone()
	return &c
}

// Next produces the next job, or (nil, false) once cfg.Jobs jobs have
// been produced (never for an unbounded stream).
func (s *LublinStream) Next() (*Job, bool) {
	if s.cfg.Jobs > 0 && s.i >= s.cfg.Jobs {
		return nil, false
	}
	s.i++
	// Exponential gap modulated by the hour-of-day intensity.
	hour := int(math.Mod(s.now, 86400)) / 3600
	intensity := dailyCycleWeights[hour] / s.cycleMean
	s.now += s.arrivalRNG.ExpFloat64() * s.cfg.MeanInterarrival / intensity

	nodes := lublinSize(s.sizeRNG, &s.cfg)
	rt := lublinRuntime(s.runtimeRNG, &s.cfg, nodes)
	j := &Job{
		ID:          s.i,
		User:        s.userRNG.Intn(s.cfg.Users),
		Submit:      int64(s.now),
		Nodes:       nodes,
		MemPerNode:  sampleMem(s.memRNG, s.memCfg),
		BaseRuntime: rt,
	}
	j.Group = j.User % 8
	j.Estimate = sampleEstimate(s.estRNG, rt, s.estCfg)
	return j, true
}

// drainStream materialises a bounded stream into a named workload,
// re-establishing the batch invariants (sorted, valid).
func drainStream(name, errLabel string, jobs int, next func() (*Job, bool)) (*Workload, error) {
	w := &Workload{Name: name, Jobs: make([]*Job, 0, jobs)}
	for {
		j, ok := next()
		if !ok {
			break
		}
		w.Jobs = append(w.Jobs, j)
	}
	w.Sort()
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s produced invalid trace: %w", errLabel, err)
	}
	return w, nil
}
