package workload

import (
	"bytes"
	"strings"
	"testing"
)

func sameJob(a, b *Job) bool { return *a == *b }

func TestGenStreamMatchesGenerate(t *testing.T) {
	// Pulling a fresh stream N times must yield exactly the N-job
	// materialised workload (the sort in Generate is a stable no-op:
	// streams produce nondecreasing submits with ascending IDs).
	cfg := DefaultGenConfig(500, 9, 256)
	w := MustGenerate(cfg)
	st, err := NewGenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range w.Jobs {
		got, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at %d, want %d jobs", i, len(w.Jobs))
		}
		if !sameJob(got, want) {
			t.Fatalf("job %d: stream %+v != generate %+v", i, got, want)
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream produced more than cfg.Jobs jobs")
	}
}

func TestLublinStreamMatchesGenerate(t *testing.T) {
	cfg := DefaultLublinConfig(500, 4, 256)
	w := MustGenerateLublin(cfg)
	st, err := NewLublinStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range w.Jobs {
		got, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at %d, want %d jobs", i, len(w.Jobs))
		}
		if !sameJob(got, want) {
			t.Fatalf("job %d: stream %+v != generate %+v", i, got, want)
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream produced more than cfg.Jobs jobs")
	}
}

func TestUnboundedStreamExtendsBoundedPrefix(t *testing.T) {
	// Jobs=0 produces forever; its prefix must equal any bounded run
	// with the same seed (the cap must not perturb the sample streams).
	bounded := DefaultGenConfig(50, 2, 64)
	unbounded := bounded
	unbounded.Jobs = 0
	bs, err := NewGenStream(bounded)
	if err != nil {
		t.Fatal(err)
	}
	us, err := NewGenStream(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, okA := bs.Next()
		b, okB := us.Next()
		if !okA || !okB || !sameJob(a, b) {
			t.Fatalf("job %d diverges: %+v vs %+v", i, a, b)
		}
	}
	if _, ok := bs.Next(); ok {
		t.Fatal("bounded stream did not stop at its cap")
	}
	if j, ok := us.Next(); !ok || j.ID != 51 {
		t.Fatalf("unbounded stream should continue past the cap, got %v %v", j, ok)
	}
}

func TestSWFDecoderMatchesReadSWF(t *testing.T) {
	wl := MustGenerate(DefaultGenConfig(200, 5, 128))
	var buf bytes.Buffer
	if err := WriteSWF(&buf, wl); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	batch, skipped, err := ReadSWF(bytes.NewReader(data), SWFReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewSWFDecoder(bytes.NewReader(data), SWFReadOptions{})
	for i, want := range batch.Jobs {
		got, ok := d.Next()
		if !ok {
			t.Fatalf("decoder ended at %d, want %d jobs (err %v)", i, len(batch.Jobs), d.Err())
		}
		if !sameJob(got, want) {
			t.Fatalf("job %d: decoder %+v != ReadSWF %+v", i, got, want)
		}
	}
	if _, ok := d.Next(); ok {
		t.Fatal("decoder produced extra jobs")
	}
	if d.Err() != nil || d.Skipped() != skipped {
		t.Fatalf("decoder err=%v skipped=%d, want nil and %d", d.Err(), d.Skipped(), skipped)
	}
}

func TestSWFDecoderMaxJobsAndErrors(t *testing.T) {
	trace := "; header\n" +
		"1 0 -1 100 4 -1 -1 4 200 1024 1 7 0 -1 -1 -1 -1 -1\n" +
		"2 10 -1 100 4 -1 -1 4 200 1024 1 7 0 -1 -1 -1 -1 -1\n" +
		"3 20 -1 100 4 -1 -1 4 200 1024 1 7 0 -1 -1 -1 -1 -1\n"
	d := NewSWFDecoder(strings.NewReader(trace), SWFReadOptions{MaxJobs: 2})
	n := 0
	for {
		_, ok := d.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 || d.Err() != nil {
		t.Fatalf("MaxJobs=2 yielded %d jobs, err %v", n, d.Err())
	}

	bad := NewSWFDecoder(strings.NewReader("1 2 3\n"), SWFReadOptions{})
	if _, ok := bad.Next(); ok || bad.Err() == nil {
		t.Fatalf("short line should end the stream with an error, got err %v", bad.Err())
	}
	if _, ok := bad.Next(); ok {
		t.Fatal("decoder must stay ended after an error")
	}
}

func TestSWFWriterMatchesWriteSWF(t *testing.T) {
	wl := MustGenerate(DefaultGenConfig(50, 8, 64))
	var batch bytes.Buffer
	if err := WriteSWF(&batch, wl); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw := NewSWFWriter(&stream)
	sw.Comment("streamed header differs; records must not")
	for _, j := range wl.Jobs {
		if err := sw.WriteJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	stripHeader := func(s string) string {
		lines := strings.SplitN(s, "\n", 2)
		return lines[1]
	}
	if stripHeader(batch.String()) != stripHeader(stream.String()) {
		t.Fatal("streamed records differ from batch WriteSWF records")
	}
}
