package workload

import (
	"fmt"
	"strings"

	"dismem/internal/stats"
)

// Summary aggregates the trace-level statistics reported in the paper's
// workload-characteristics table (Table 1).
type Summary struct {
	Name     string
	Jobs     int
	SpanSec  int64
	Users    int
	Nodes    stats.Online // per-job node request
	Runtime  stats.Online // base runtime, seconds
	Estimate stats.Online // walltime estimate, seconds
	Accuracy stats.Online // runtime/estimate
	MemNode  stats.Online // per-node footprint, MiB
	MemTotal stats.Online // whole-job footprint, MiB

	// P50/P95/P99 of per-node memory, MiB — the disaggregation story
	// hinges on this tail.
	MemP50, MemP95, MemP99 float64
	// NodeHours is Σ nodes·runtime / 3600, the demand volume.
	NodeHours float64
	// LargeMemFraction is the fraction of jobs above threshold MiB/node.
	LargeMemFraction float64
	// LargeMemThreshold is the threshold used for LargeMemFraction.
	LargeMemThreshold int64
}

// Summarize computes trace statistics. largeMemThreshold (MiB/node)
// splits "fits in reduced local DRAM" from "needs the pool"; pass the
// local DRAM size of the machine under study.
func Summarize(w *Workload, largeMemThreshold int64) *Summary {
	s := &Summary{Name: w.Name, Jobs: len(w.Jobs), LargeMemThreshold: largeMemThreshold}
	users := map[int]bool{}
	mems := make([]float64, 0, len(w.Jobs))
	large := 0
	for _, j := range w.Jobs {
		users[j.User] = true
		s.Nodes.Add(float64(j.Nodes))
		s.Runtime.Add(float64(j.BaseRuntime))
		s.Estimate.Add(float64(j.Estimate))
		s.Accuracy.Add(j.Accuracy())
		s.MemNode.Add(float64(j.MemPerNode))
		s.MemTotal.Add(float64(j.TotalMem()))
		s.NodeHours += float64(j.Nodes) * float64(j.BaseRuntime) / 3600
		mems = append(mems, float64(j.MemPerNode))
		if j.MemPerNode > largeMemThreshold {
			large++
		}
	}
	s.Users = len(users)
	first, last := w.Span()
	s.SpanSec = last - first
	ps := stats.Percentiles(mems, 50, 95, 99)
	s.MemP50, s.MemP95, s.MemP99 = ps[0], ps[1], ps[2]
	if s.Jobs > 0 {
		s.LargeMemFraction = float64(large) / float64(s.Jobs)
	}
	return s
}

// String renders a human-readable multi-line table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s\n", s.Name)
	fmt.Fprintf(&b, "  jobs            %d (%d users, span %.1f h, %.0f node-hours)\n",
		s.Jobs, s.Users, float64(s.SpanSec)/3600, s.NodeHours)
	fmt.Fprintf(&b, "  nodes/job       mean %.1f  max %.0f\n", s.Nodes.Mean(), s.Nodes.Max())
	fmt.Fprintf(&b, "  runtime (s)     mean %.0f  p-max %.0f\n", s.Runtime.Mean(), s.Runtime.Max())
	fmt.Fprintf(&b, "  estimate acc.   mean %.2f\n", s.Accuracy.Mean())
	fmt.Fprintf(&b, "  mem/node (MiB)  mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f\n",
		s.MemNode.Mean(), s.MemP50, s.MemP95, s.MemP99)
	fmt.Fprintf(&b, "  >%d MiB/node    %.1f%% of jobs\n", s.LargeMemThreshold, 100*s.LargeMemFraction)
	return b.String()
}
