package workload

import (
	"strings"
	"testing"
)

func TestSummarizeHandMade(t *testing.T) {
	w := &Workload{Name: "hand", Jobs: []*Job{
		{ID: 1, User: 1, Submit: 0, Nodes: 2, MemPerNode: 1000, Estimate: 200, BaseRuntime: 100},
		{ID: 2, User: 2, Submit: 3600, Nodes: 4, MemPerNode: 3000, Estimate: 400, BaseRuntime: 200},
		{ID: 3, User: 1, Submit: 7200, Nodes: 6, MemPerNode: 5000, Estimate: 600, BaseRuntime: 300},
	}}
	s := Summarize(w, 2000)
	if s.Jobs != 3 || s.Users != 2 {
		t.Fatalf("jobs=%d users=%d, want 3/2", s.Jobs, s.Users)
	}
	if s.SpanSec != 7200 {
		t.Fatalf("span = %d, want 7200", s.SpanSec)
	}
	if s.Nodes.Mean() != 4 {
		t.Fatalf("mean nodes = %g, want 4", s.Nodes.Mean())
	}
	if s.MemNode.Mean() != 3000 {
		t.Fatalf("mean mem = %g, want 3000", s.MemNode.Mean())
	}
	if s.MemP50 != 3000 {
		t.Fatalf("p50 mem = %g, want 3000", s.MemP50)
	}
	// 2 of 3 jobs exceed the 2000 MiB threshold.
	if got := s.LargeMemFraction; got < 0.66 || got > 0.67 {
		t.Fatalf("large-mem fraction = %g, want 2/3", got)
	}
	// node-hours = (2*100 + 4*200 + 6*300)/3600 h.
	want := (200.0 + 800 + 1800) / 3600
	if diff := s.NodeHours - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("node-hours = %g, want %g", s.NodeHours, want)
	}
	if acc := s.Accuracy.Mean(); acc != 0.5 {
		t.Fatalf("mean accuracy = %g, want 0.5", acc)
	}
}

func TestSummaryString(t *testing.T) {
	w := MustGenerate(DefaultGenConfig(100, 1, 32))
	out := Summarize(w, 64*1024).String()
	for _, want := range []string{"jobs", "nodes/job", "mem/node", "runtime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Workload{Name: "empty"}, 1024)
	if s.Jobs != 0 || s.LargeMemFraction != 0 || s.NodeHours != 0 {
		t.Fatalf("empty summary not zeroed: %+v", s)
	}
}
