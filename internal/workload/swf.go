package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
)

// The Standard Workload Format (SWF, Feitelson's Parallel Workloads
// Archive) is one record per line with 18 whitespace-separated integer
// fields; comment lines begin with ';'. Field indices (1-based) used
// here:
//
//	 1 job number          2 submit time (s)     3 wait time (s)
//	 4 run time (s)        5 allocated procs     6 avg cpu time
//	 7 used memory (KB/proc)
//	 8 requested procs     9 requested time     10 requested memory (KB/proc)
//	11 status             12 user id            13 group id
//	14 executable         15 queue              16 partition
//	17 preceding job      18 think time
//
// On import, "processors" are interpreted as nodes when nodeCores == 0,
// or converted to nodes by dividing by nodeCores (ceiling) otherwise —
// the archive mixes both conventions, so the caller chooses.

// SWFReadOptions controls trace import.
type SWFReadOptions struct {
	// NodeCores > 0 converts SWF "processors" to nodes by ceiling
	// division; 0 treats processors as nodes directly.
	NodeCores int
	// DefaultMemPerNode (MiB) is assigned to jobs whose memory fields
	// are absent (-1), which is the common case in the archive.
	DefaultMemPerNode int64
	// MaxJobs truncates the import; 0 means no limit.
	MaxJobs int
}

// SWFDecoder decodes an SWF trace one job at a time with O(1) memory:
// the lazy half of ReadSWF, and what internal/source.SWF builds on for
// bounded-memory replay of archive-scale traces. Jobs are yielded in
// file order; unlike ReadSWF it cannot sort, so streaming consumers
// must either require a submit-sorted trace (the archive convention)
// or tolerate disorder themselves. Not safe for concurrent use.
type SWFDecoder struct {
	sc      *bufio.Scanner
	opt     SWFReadOptions
	offset  int64 // reader bytes consumed; a record boundary between Next calls
	lineNo  int
	skipped int
	emitted int
	err     error
	done    bool
	v       [18]int64 // per-line field scratch, reused across calls
}

// NewSWFDecoder returns a decoder reading from r.
func NewSWFDecoder(r io.Reader, opt SWFReadOptions) *SWFDecoder {
	d := &SWFDecoder{opt: opt}
	d.initScanner(r)
	return d
}

// initScanner builds the line scanner with a split function that
// accounts every consumed byte, so Offset is exact at each record
// boundary (bufio.ScanLines returns a zero advance while it waits for
// more data, so each byte is counted exactly once).
func (d *SWFDecoder) initScanner(r io.Reader) {
	d.sc = bufio.NewScanner(r)
	d.sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	d.sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		advance, token, err := bufio.ScanLines(data, atEOF)
		d.offset += int64(advance)
		return advance, token, err
	})
}

// Offset returns the byte offset of the decoder's position in the
// underlying reader: the start of the first unconsumed line. Between
// Next calls it is a record boundary, so a seekable reader repositioned
// here (with the rest of the decoder state, see State) continues the
// identical job sequence — the cursor behind file-backed source forking
// and durable checkpoints.
func (d *SWFDecoder) Offset() int64 { return d.offset }

// SWFDecoderState is the portable cursor of a decoder between Next
// calls: reposition a reader over the same bytes to Offset and rebuild
// with NewSWFDecoderAt to continue the identical job sequence.
type SWFDecoderState struct {
	Opt     SWFReadOptions `json:"opt"`
	Offset  int64          `json:"offset"`
	LineNo  int            `json:"lineNo"`
	Skipped int            `json:"skipped,omitempty"`
	Emitted int            `json:"emitted"`
	Done    bool           `json:"done,omitempty"`
}

// State captures the decoder's cursor. A decoder that has failed has no
// meaningful resume point and returns its error instead.
func (d *SWFDecoder) State() (SWFDecoderState, error) {
	if d.err != nil {
		return SWFDecoderState{}, fmt.Errorf("workload: swf decoder failed, no resumable cursor: %w", d.err)
	}
	return SWFDecoderState{
		Opt: d.opt, Offset: d.offset,
		LineNo: d.lineNo, Skipped: d.skipped, Emitted: d.emitted,
		Done: d.done,
	}, nil
}

// NewSWFDecoderAt rebuilds a decoder at a captured cursor. The caller
// must have positioned r at st.Offset of the same byte stream the
// cursor was captured from (e.g. os.File.Seek on a re-opened trace).
func NewSWFDecoderAt(r io.Reader, st SWFDecoderState) *SWFDecoder {
	d := &SWFDecoder{
		opt:     st.Opt,
		offset:  st.Offset,
		lineNo:  st.LineNo,
		skipped: st.Skipped,
		emitted: st.Emitted,
		done:    st.Done,
	}
	d.initScanner(r)
	return d
}

// Next returns the next usable job, or (nil, false) at end of trace, on
// the first malformed line, or once opt.MaxJobs jobs have been yielded.
// Check Err after the stream ends to distinguish the cases.
func (d *SWFDecoder) Next() (*Job, bool) {
	if d.done || (d.opt.MaxJobs > 0 && d.emitted >= d.opt.MaxJobs) {
		return nil, false
	}
	for d.sc.Scan() {
		d.lineNo++
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 || line[0] == ';' {
			continue
		}
		n, badField, err := parseSWFLine(line, d.v[:])
		if err != nil {
			d.fail(fmt.Errorf("workload: swf line %d field %d: %v", d.lineNo, badField+1, err))
			return nil, false
		}
		if n < 18 {
			d.fail(fmt.Errorf("workload: swf line %d: %d fields, want 18", d.lineNo, n))
			return nil, false
		}
		j := jobFromSWF(d.v[:], d.opt)
		if j == nil {
			d.skipped++
			continue
		}
		d.emitted++
		return j, true
	}
	if err := d.sc.Err(); err != nil {
		d.fail(fmt.Errorf("workload: reading swf: %w", err))
		return nil, false
	}
	d.done = true
	return nil, false
}

func (d *SWFDecoder) fail(err error) {
	d.err = err
	d.done = true
}

// parseSWFLine splits a record line on ASCII whitespace and parses up to
// len(v) base-10 integer fields into v, allocation-free — the decoder's
// per-line cost used to be dominated by the string conversion and
// strings.Fields of the scanned bytes. It returns the number of fields
// parsed; on a malformed field it returns its index and the error.
func parseSWFLine(line []byte, v []int64) (n, badField int, err error) {
	i := 0
	for n < len(v) {
		for i < len(line) && isSWFSpace(line[i]) {
			i++
		}
		if i >= len(line) {
			return n, 0, nil
		}
		start := i
		for i < len(line) && !isSWFSpace(line[i]) {
			i++
		}
		x, perr := parseInt64(line[start:i])
		if perr != nil {
			return n, n, perr
		}
		v[n] = x
		n++
	}
	// More fields than v holds: the extras are ignored, matching the
	// historical behavior of reading exactly the first 18 fields.
	return n, 0, nil
}

func isSWFSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r'
}

// parseInt64 is strconv.ParseInt(string(b), 10, 64) without the string
// conversion (and without base-prefix or underscore forms, which SWF
// does not use).
func parseInt64(b []byte) (int64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("invalid integer %q", b)
	}
	var x uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer %q", b)
		}
		d := uint64(c - '0')
		if x > (math.MaxUint64-d)/10 {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		x = x*10 + d
	}
	if neg {
		if x > uint64(math.MaxInt64)+1 {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		return -int64(x), nil
	}
	if x > math.MaxInt64 {
		return 0, fmt.Errorf("integer %q out of range", b)
	}
	return int64(x), nil
}

// Skipped returns how many unusable records were dropped so far.
func (d *SWFDecoder) Skipped() int { return d.skipped }

// Err returns the first decode error, or nil.
func (d *SWFDecoder) Err() error { return d.err }

// ReadSWF parses an SWF trace. Jobs with unusable records (zero size,
// zero runtime, negative submit) are skipped rather than failing the
// whole trace, matching common simulator practice; a count of skipped
// lines is returned.
func ReadSWF(r io.Reader, opt SWFReadOptions) (*Workload, int, error) {
	d := NewSWFDecoder(r, opt)
	w := &Workload{Name: "swf"}
	for {
		j, ok := d.Next()
		if !ok {
			break
		}
		w.Jobs = append(w.Jobs, j)
	}
	if err := d.Err(); err != nil {
		return nil, d.Skipped(), err
	}
	w.Sort()
	return w, d.Skipped(), nil
}

func jobFromSWF(v []int64, opt SWFReadOptions) *Job {
	procs := v[4]
	if procs <= 0 {
		procs = v[7] // fall back to requested processors
	}
	runtime := v[3]
	estimate := v[8]
	if estimate <= 0 {
		estimate = runtime // archive convention when request is absent
	}
	if v[0] <= 0 || v[1] < 0 || procs <= 0 || runtime <= 0 || estimate <= 0 {
		return nil
	}
	nodes := int(procs)
	coresPerNode := 0
	if opt.NodeCores > 0 {
		nodes = int((procs + int64(opt.NodeCores) - 1) / int64(opt.NodeCores))
		coresPerNode = opt.NodeCores
	}
	// SWF memory is KB per processor; convert to MiB per node.
	memKBPerProc := v[9]
	if memKBPerProc <= 0 {
		memKBPerProc = v[6]
	}
	memPerNode := opt.DefaultMemPerNode
	if memKBPerProc > 0 {
		perProcMiB := memKBPerProc / 1024
		if perProcMiB == 0 {
			perProcMiB = 1
		}
		procsPerNode := int64(1)
		if opt.NodeCores > 0 {
			procsPerNode = int64(opt.NodeCores)
		}
		memPerNode = perProcMiB * procsPerNode
	}
	if runtime > estimate {
		// Keep killed-at-limit jobs truthful: the archive logs actual
		// runtime even past the request on some systems.
		estimate = runtime
	}
	return &Job{
		ID:           int(v[0]),
		User:         int(v[11]),
		Group:        int(v[12]),
		Submit:       v[1],
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		MemPerNode:   memPerNode,
		Estimate:     estimate,
		BaseRuntime:  runtime,
	}
}

// SWFWriter serialises jobs to SWF one at a time: the streaming half of
// WriteSWF, used by tracegen's flat-memory generation path. Create with
// NewSWFWriter, optionally emit Comment lines, then WriteJob per job and
// Flush once at the end.
type SWFWriter struct {
	bw  *bufio.Writer
	err error
}

// NewSWFWriter returns a writer encoding to w.
func NewSWFWriter(w io.Writer) *SWFWriter {
	return &SWFWriter{bw: bufio.NewWriter(w)}
}

// Comment emits one ';'-prefixed header line (readers skip it).
func (sw *SWFWriter) Comment(text string) {
	if sw.err != nil {
		return
	}
	_, err := fmt.Fprintf(sw.bw, "; %s\n", text)
	sw.setErr(err)
}

// WriteJob encodes one job record. Unknown fields are written as -1 per
// the format convention; memory goes to field 10 in KB per processor
// (processor == node when CoresPerNode is 0). After the first error,
// further writes are no-ops and Flush reports it.
func (sw *SWFWriter) WriteJob(j *Job) error {
	if sw.err != nil {
		return sw.err
	}
	procs := j.Nodes
	memKBPerProc := j.MemPerNode * 1024
	if j.CoresPerNode > 0 {
		procs = j.Nodes * j.CoresPerNode
		memKBPerProc = j.MemPerNode * 1024 / int64(j.CoresPerNode)
	}
	_, err := fmt.Fprintf(sw.bw, "%d %d -1 %d %d -1 -1 %d %d %d 1 %d %d -1 -1 -1 -1 -1\n",
		j.ID, j.Submit, j.BaseRuntime, procs,
		procs, j.Estimate, memKBPerProc, j.User, j.Group)
	sw.setErr(err)
	return sw.err
}

// WriteAll drains a lazy producer into the writer — one job in flight
// at a time — and flushes: the shared encode loop of tracegen -n, the
// replay benchmarks and the streaming example. next is any pull
// function in the JobStream shape (e.g. a source's or stream's Next
// method value).
func (sw *SWFWriter) WriteAll(next func() (*Job, bool)) error {
	for {
		j, ok := next()
		if !ok {
			break
		}
		if err := sw.WriteJob(j); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// Flush writes buffered output and returns the first error seen.
func (sw *SWFWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	sw.setErr(sw.bw.Flush())
	return sw.err
}

func (sw *SWFWriter) setErr(err error) {
	if sw.err == nil && err != nil {
		sw.err = fmt.Errorf("workload: writing swf: %w", err)
	}
}

// WriteSWF serialises the workload in SWF. Unknown fields are written as
// -1 per the format convention. Memory is written to field 10 in KB per
// processor (processor == node when CoresPerNode is 0).
func WriteSWF(w io.Writer, wl *Workload) error {
	sw := NewSWFWriter(w)
	sw.Comment(fmt.Sprintf("SWF trace %q, %d jobs, generated by dismem", wl.Name, len(wl.Jobs)))
	for _, j := range wl.Jobs {
		if err := sw.WriteJob(j); err != nil {
			return err
		}
	}
	return sw.Flush()
}
