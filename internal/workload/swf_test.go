package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dismem/internal/stats"
)

func TestSWFRoundTrip(t *testing.T) {
	orig := MustGenerate(DefaultGenConfig(200, 5, 64))
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSWF(&buf, SWFReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("round-trip skipped %d records", skipped)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("round-trip: %d jobs, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i, want := range orig.Jobs {
		g := got.Jobs[i]
		if g.ID != want.ID || g.Submit != want.Submit || g.Nodes != want.Nodes ||
			g.BaseRuntime != want.BaseRuntime || g.Estimate != want.Estimate ||
			g.User != want.User || g.Group != want.Group {
			t.Fatalf("job %d mismatch:\n got %+v\nwant %+v", i, g, want)
		}
		if g.MemPerNode != want.MemPerNode {
			t.Fatalf("job %d memory: got %d, want %d", i, g.MemPerNode, want.MemPerNode)
		}
	}
}

// TestSWFRoundTripProperty: arbitrary valid jobs survive write→read.
func TestSWFRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(1)
	check := func(n uint8) bool {
		jobs := int(n%40) + 1
		w := &Workload{Name: "prop"}
		submit := int64(0)
		for i := 1; i <= jobs; i++ {
			submit += rng.Int63n(1000)
			rt := rng.Int63n(10000) + 1
			w.Jobs = append(w.Jobs, &Job{
				ID: i, User: int(rng.Intn(50)), Group: int(rng.Intn(8)),
				Submit: submit, Nodes: int(rng.Intn(128)) + 1,
				MemPerNode:  rng.Int63n(1 << 18),
				BaseRuntime: rt,
				Estimate:    rt + rng.Int63n(100000),
			})
		}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, w); err != nil {
			return false
		}
		got, skipped, err := ReadSWF(&buf, SWFReadOptions{})
		if err != nil || skipped != 0 || len(got.Jobs) != jobs {
			return false
		}
		for i, want := range w.Jobs {
			g := got.Jobs[i]
			if g.ID != want.ID || g.Submit != want.Submit ||
				g.Nodes != want.Nodes || g.BaseRuntime != want.BaseRuntime ||
				g.Estimate != want.Estimate {
				return false
			}
			// Memory tolerates MiB quantisation of the KB field only for
			// the zero case (0 MiB becomes the reader default).
			if want.MemPerNode > 0 && g.MemPerNode != want.MemPerNode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSWFSkipsCommentsAndBlank(t *testing.T) {
	in := `; comment header
; another

1 0 -1 100 4 -1 -1 4 200 -1 1 7 0 -1 -1 -1 -1 -1
`
	w, skipped, err := ReadSWF(strings.NewReader(in), SWFReadOptions{DefaultMemPerNode: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(w.Jobs) != 1 {
		t.Fatalf("jobs=%d skipped=%d, want 1/0", len(w.Jobs), skipped)
	}
	j := w.Jobs[0]
	if j.ID != 1 || j.Nodes != 4 || j.BaseRuntime != 100 || j.Estimate != 200 ||
		j.User != 7 || j.MemPerNode != 1024 {
		t.Fatalf("parsed job = %+v", j)
	}
}

func TestReadSWFSkipsUnusableRecords(t *testing.T) {
	in := `1 0 -1 100 4 -1 -1 4 200 -1 1 7 0 -1 -1 -1 -1 -1
2 5 -1 0 4 -1 -1 4 200 -1 1 7 0 -1 -1 -1 -1 -1
3 6 -1 100 0 -1 -1 0 200 -1 1 7 0 -1 -1 -1 -1 -1
`
	w, skipped, err := ReadSWF(strings.NewReader(in), SWFReadOptions{DefaultMemPerNode: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || skipped != 2 {
		t.Fatalf("jobs=%d skipped=%d, want 1/2 (zero runtime and zero size dropped)", len(w.Jobs), skipped)
	}
}

func TestReadSWFErrors(t *testing.T) {
	// Too few fields.
	if _, _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFReadOptions{}); err == nil {
		t.Fatal("short record accepted")
	}
	// Non-integer field.
	bad := "1 0 -1 100 x -1 -1 4 200 -1 1 7 0 -1 -1 -1 -1 -1\n"
	if _, _, err := ReadSWF(strings.NewReader(bad), SWFReadOptions{}); err == nil {
		t.Fatal("non-integer field accepted")
	}
}

func TestReadSWFNodeCoresConversion(t *testing.T) {
	// 70 processors at 32 cores/node → ceil(70/32) = 3 nodes.
	in := "1 0 -1 100 70 -1 -1 70 200 32768 1 7 0 -1 -1 -1 -1 -1\n"
	w, _, err := ReadSWF(strings.NewReader(in), SWFReadOptions{NodeCores: 32})
	if err != nil {
		t.Fatal(err)
	}
	j := w.Jobs[0]
	if j.Nodes != 3 || j.CoresPerNode != 32 {
		t.Fatalf("nodes=%d cores=%d, want 3/32", j.Nodes, j.CoresPerNode)
	}
	// 32768 KB/proc = 32 MiB/proc × 32 procs/node = 1024 MiB/node.
	if j.MemPerNode != 1024 {
		t.Fatalf("mem/node = %d, want 1024", j.MemPerNode)
	}
}

func TestReadSWFMaxJobs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, MustGenerate(DefaultGenConfig(50, 2, 16))); err != nil {
		t.Fatal(err)
	}
	w, _, err := ReadSWF(&buf, SWFReadOptions{MaxJobs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 10 {
		t.Fatalf("MaxJobs: got %d jobs, want 10", len(w.Jobs))
	}
}

func TestReadSWFRuntimePastEstimate(t *testing.T) {
	// Runtime 300 > request 200: estimate must be lifted to the runtime
	// so the record stays self-consistent.
	in := "1 0 -1 300 4 -1 -1 4 200 -1 1 7 0 -1 -1 -1 -1 -1\n"
	w, _, err := ReadSWF(strings.NewReader(in), SWFReadOptions{DefaultMemPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[0].Estimate != 300 {
		t.Fatalf("estimate = %d, want lifted to 300", w.Jobs[0].Estimate)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
