//go:build !race

package dismem_test

// raceEnabled is false in ordinary builds; see race_on_test.go.
const raceEnabled = false
