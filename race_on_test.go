//go:build race

package dismem_test

// raceEnabled reports whether this binary was built with -race; the
// alloc-budget tests skip then, since the detector's shadow-memory
// bookkeeping allocates on the simulator's behalf.
const raceEnabled = true
