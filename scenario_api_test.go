package dismem_test

import (
	"reflect"
	"testing"

	"dismem"
)

// TestScenarioGolden pins the subsystem's two determinism guarantees
// through the public API: an empty scenario is bit-identical to no
// scenario, and the same scenario+seed reproduces identical Reports
// across independent simulations (the CI determinism job repeats the
// latter across two processes).
func TestScenarioGolden(t *testing.T) {
	wl := dismem.SyntheticWorkload(300, 17)
	run := func(sc *dismem.Scenario) *dismem.Result {
		res, err := dismem.Simulate(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl, Scenario: sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	empty := run(&dismem.Scenario{})
	if empty.Events != plain.Events {
		t.Errorf("empty scenario fired %d events, scenario-free run %d", empty.Events, plain.Events)
	}
	if !reflect.DeepEqual(empty.Report, plain.Report) {
		t.Error("empty scenario changed the report")
	}
	if !reflect.DeepEqual(empty.Recorder.Records(), plain.Recorder.Records()) {
		t.Error("empty scenario changed per-job records")
	}

	sc, err := dismem.ParseScenario(
		"at=21600 down rack=1; at=43200 up rack=1; from=0 period=86400 amp=0.5 diurnal")
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(sc), run(sc)
	if a.Events != b.Events || !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatal("same scenario+seed did not reproduce identical results")
	}
	if !reflect.DeepEqual(a.Recorder.Records(), b.Recorder.Records()) {
		t.Fatal("same scenario+seed produced different records")
	}
	if a.ScenarioEvents == 0 {
		t.Fatal("scenario applied no interventions")
	}
	if reflect.DeepEqual(a.Report, plain.Report) {
		t.Error("rack outage scenario had no observable effect")
	}
}

// TestParseScenarioAPI covers the public wrapper: round trip and error
// wrapping.
func TestParseScenarioAPI(t *testing.T) {
	spec := "at=3600 down rack=2; at=7200 up rack=2; from=0 period=86400 amp=0.5 diurnal"
	sc, err := dismem.ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := dismem.ParseScenario(sc.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, sc2) {
		t.Fatalf("round trip mismatch: %+v vs %+v", sc, sc2)
	}
	if _, err := dismem.ParseScenario("at=1 explode"); err == nil {
		t.Fatal("nonsense scenario accepted")
	}
}

// TestScenarioObserverHook delivers OnScenarioEvent through the public
// Observer surface (countingObserver in simulation_test.go covers the
// embedded-NopObserver path).
func TestScenarioObserverHook(t *testing.T) {
	wl := dismem.SyntheticWorkload(200, 3)
	sc, err := dismem.ParseScenario("at=3600 beta scale=2; at=7200 beta scale=1")
	if err != nil {
		t.Fatal(err)
	}
	var got []dismem.ScenarioEvent
	rec := &recordingObserver{events: &got}
	if _, err := dismem.Simulate(dismem.Options{
		Policy: "memaware", Workload: wl, Scenario: sc, Observer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].At != 3600 || got[1].At != 7200 {
		t.Fatalf("observer saw %+v", got)
	}
}

// recordingObserver appends every applied intervention.
type recordingObserver struct {
	dismem.NopObserver
	events *[]dismem.ScenarioEvent
}

func (r *recordingObserver) OnScenarioEvent(_ int64, ev dismem.ScenarioEvent) {
	*r.events = append(*r.events, ev)
}
