package dismem_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"dismem"
)

// seriesOpts is the adversarial configuration for the series golden
// tests: contention-sensitive model, failures and a scenario timeline,
// sampled off-phase from the scenario instants.
func seriesOpts(wl *dismem.Workload, sink dismem.SeriesSink) dismem.Options {
	o := forkOpts(wl)
	o.SeriesSink = sink
	o.SampleEvery = 1800
	return o
}

// runSeries runs wl to completion with a JSONL series sink attached
// and returns the series bytes.
func runSeries(t *testing.T, wl *dismem.Workload) []byte {
	t.Helper()
	var buf bytes.Buffer
	mustRun(t, mustNew(t, seriesOpts(wl, dismem.NewJSONLSeriesSink(&buf))))
	if buf.Len() == 0 {
		t.Fatal("run produced an empty series")
	}
	return buf.Bytes()
}

// TestSeriesGoldenSourceVsWorkload: the same jobs delivered as a
// materialised Workload and as a streaming Source produce
// byte-identical series files.
func TestSeriesGoldenSourceVsWorkload(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	slice := runSeries(t, wl)

	var buf bytes.Buffer
	o := seriesOpts(nil, dismem.NewJSONLSeriesSink(&buf))
	o.Source = dismem.WorkloadSource(wl)
	mustRun(t, mustNew(t, o))
	if !bytes.Equal(slice, buf.Bytes()) {
		t.Fatal("streamed-source series differs from the workload-slice series")
	}
}

// TestSeriesGoldenResumeComposition: interrupt a run at an instant that
// is NOT a tick multiple, fork from the checkpoint, and the parent's
// series plus the fork's series concatenate to exactly the clean run's
// bytes — the tick chain is checkpointed state, so the resumed chain
// stays in phase.
func TestSeriesGoldenResumeComposition(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	clean := runSeries(t, wl)

	var prefix bytes.Buffer
	h := mustNew(t, seriesOpts(wl, dismem.NewJSONLSeriesSink(&prefix)))
	h.RunUntil(50000) // off-phase: not a multiple of the 1800 s period
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.SampleEvery() != 1800 {
		t.Fatalf("checkpoint reports sampling period %d, want 1800", cp.SampleEvery())
	}
	h.Stop()
	if _, err := h.Result(); err != nil { // closes (flushes) the prefix sink
		t.Fatal(err)
	}

	var suffix bytes.Buffer
	mustRun(t, mustFork(t, cp, dismem.ForkOptions{SeriesSink: dismem.NewJSONLSeriesSink(&suffix)}))

	joined := append(append([]byte{}, prefix.Bytes()...), suffix.Bytes()...)
	if !bytes.Equal(clean, joined) {
		t.Fatalf("prefix (%d B) + suffix (%d B) series != clean series (%d B)",
			prefix.Len(), suffix.Len(), len(clean))
	}
}

// TestSeriesGoldenDurableRoundTrip: the composition property survives
// the durable checkpoint file format, and an explicit equal
// ForkOptions.SampleEvery keeps the phase just like leaving it 0.
func TestSeriesGoldenDurableRoundTrip(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	clean := runSeries(t, wl)

	var prefix bytes.Buffer
	h := mustNew(t, seriesOpts(wl, dismem.NewJSONLSeriesSink(&prefix)))
	h.RunUntil(50000)
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.dmckpt")
	if err := dismem.WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := dismem.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var suffix bytes.Buffer
	fo := dismem.ForkOptions{
		SeriesSink:  dismem.NewJSONLSeriesSink(&suffix),
		SampleEvery: loaded.SampleEvery(), // explicit equal period = same phase as 0
	}
	mustRun(t, mustFork(t, loaded, fo))

	joined := append(append([]byte{}, prefix.Bytes()...), suffix.Bytes()...)
	if !bytes.Equal(clean, joined) {
		t.Fatalf("durable round trip broke series composition: prefix %d B + suffix %d B vs clean %d B",
			prefix.Len(), suffix.Len(), len(clean))
	}
}
