package dismem

import (
	"fmt"

	"dismem/internal/memmodel"
	"dismem/internal/sim"
)

// Simulation is a long-lived handle on one in-flight simulation. Unlike
// Simulate, which runs to completion, a Simulation can be advanced
// event by event (Step) or to a virtual deadline (RunUntil), queried
// for live state between advances (Now, QueueDepth, Running, Usage),
// and stopped early (Stop). It is single-goroutine state: drive it from
// one goroutine only.
type Simulation struct {
	eng *sim.Engine
	// opts is retained so Checkpoint can record how the run was built
	// (Fork rebuilds a fresh scheduler from the policy spec when the
	// fork does not override it).
	opts Options
	// horizon, when > 0, is where Run truncates this forked future
	// (ForkOptions.Horizon); Fork has already validated it against the
	// checkpoint's frozen clock.
	horizon int64
}

// New validates o, builds the engine and primes the event queue without
// firing any event: the returned handle sits at virtual time 0 with
// every arrival scheduled. Drive it with Step / RunUntil / Run and
// collect the outcome with Result.
func New(o Options) (*Simulation, error) { return newSimulation(o, nil) }

// newSimulation builds a Simulation, optionally recycling a finished
// prior engine's run-independent state (machine, event pool, scratch).
// prev == nil is a plain fresh construction; see sim.NewReusing for
// what reuse preserves and the bit-identity contract it keeps.
func newSimulation(o Options, prev *sim.Engine) (*Simulation, error) {
	if o.Workload == nil && o.Source == nil {
		return nil, fmt.Errorf("dismem: nil workload (set Options.Workload or Options.Source)")
	}
	if o.Workload != nil && o.Source != nil {
		return nil, fmt.Errorf("dismem: both Workload and Source set; choose one")
	}
	mc := o.Machine
	if mc.IsZero() {
		mc = DefaultMachine()
	}
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	model := o.ModelImpl
	if model == nil {
		ms := o.Model
		if ms == "" {
			ms = "linear:0.5"
		}
		var err error
		model, err = memmodel.Parse(ms)
		if err != nil {
			return nil, err
		}
	}
	s := o.SchedulerImpl
	if s == nil {
		var err error
		s, err = NewScheduler(o.Policy)
		if err != nil {
			return nil, err
		}
	}
	eng, err := sim.NewReusing(sim.Config{
		Machine:         mc,
		Model:           model,
		Scheduler:       s,
		ExtendLimit:     !o.StrictKill,
		CheckInvariants: o.CheckInvariants,
		Failures:        o.Failures,
		Scenario:        o.Scenario,
		Observer:        o.Observer,
		SampleEvery:     o.SampleEvery,
		RecordSink:      o.RecordSink,
		SeriesSink:      o.SeriesSink,
		TraceSink:       o.TraceSink,
	}, prev)
	if err != nil {
		return nil, err
	}
	if o.Source != nil {
		err = eng.StartSource(o.Source)
	} else {
		err = eng.Start(o.Workload)
	}
	if err != nil {
		return nil, err
	}
	return &Simulation{eng: eng, opts: o}, nil
}

// Step fires the single earliest event. It returns false once the
// simulation is done (drained or stopped).
func (s *Simulation) Step() bool { return s.eng.Step() }

// RunUntil fires every event scheduled at or before virtual time t and
// leaves the clock at exactly t, even when the simulation's last event
// is earlier (use the final Report, not Now, to recover the true end
// of a run).
func (s *Simulation) RunUntil(t int64) { s.eng.RunUntil(t) }

// Run advances the simulation to completion and returns the result:
// New + Run is equivalent to Simulate. A fork taken with
// ForkOptions.Horizon > 0 instead advances to that horizon and
// truncates there (Result.Stopped set), unless it drains first.
func (s *Simulation) Run() (*Result, error) {
	if s.horizon > 0 {
		s.eng.RunUntil(s.horizon)
		if !s.eng.Done() {
			s.eng.Stop()
		}
	} else {
		s.eng.RunAll()
	}
	return s.eng.Finish()
}

// Stop halts the simulation after the current event: a deliberate
// early exit, not an error. Result then covers the simulated prefix
// with Result.Stopped set. Safe to call from Observer callbacks.
func (s *Simulation) Stop() { s.eng.Stop() }

// Now returns the virtual clock in seconds since simulation start.
func (s *Simulation) Now() int64 { return s.eng.Now() }

// Done reports whether the simulation can make no more progress:
// everything terminated, or Stop was called.
func (s *Simulation) Done() bool { return s.eng.Done() }

// QueueDepth returns the number of jobs waiting to be dispatched.
func (s *Simulation) QueueDepth() int { return s.eng.QueueDepth() }

// Running returns the number of jobs currently holding resources.
func (s *Simulation) Running() int { return s.eng.RunningCount() }

// Usage returns the live machine occupancy snapshot; O(pools).
func (s *Simulation) Usage() Usage { return s.eng.Usage() }

// Events returns the number of DES events fired so far.
func (s *Simulation) Events() uint64 { return s.eng.Events() }

// Sample returns the full live-state snapshot observers receive.
func (s *Simulation) Sample() Sample { return s.eng.Sample() }

// Result closes the metrics window and returns the outcome. It errors
// while events or arrivals are still pending (advance with Run, or
// truncate with Stop, first); afterwards it is idempotent.
func (s *Simulation) Result() (*Result, error) {
	if !s.eng.Done() {
		return nil, fmt.Errorf("dismem: simulation has pending work at t=%d; call Run to finish or Stop to truncate", s.eng.Now())
	}
	return s.eng.Finish()
}
