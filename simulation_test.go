package dismem_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"dismem"
	"dismem/internal/sched"
	"dismem/internal/sweep"
)

// --- spec grammar round-trip --------------------------------------------

// TestLegacyNamesRoundTripThroughSpecs proves backward compatibility of
// the policy grammar: for every legacy policy name, the scheduler built
// from the name and the scheduler built from its canonical spec string
// produce bit-identical simulations.
func TestLegacyNamesRoundTripThroughSpecs(t *testing.T) {
	wl := dismem.SyntheticWorkload(400, 3)
	mc := dismem.DefaultMachine()
	mc.PoolMiB = 2 * 1024 * 1024
	mc.FabricGiBps = 8

	n := 0
	for _, name := range dismem.Policies() {
		spec, ok := dismem.PolicySpec(name)
		if !ok {
			continue // a registered custom policy, not a legacy alias
		}
		n++
		viaName, err := dismem.Simulate(dismem.Options{
			Machine: mc, Policy: name, Model: "bandwidth:1,1", Workload: wl,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		viaSpec, err := dismem.Simulate(dismem.Options{
			Machine: mc, Policy: spec, Model: "bandwidth:1,1", Workload: wl,
		})
		if err != nil {
			t.Fatalf("%s via spec %q: %v", name, spec, err)
		}
		if !reflect.DeepEqual(viaName.Recorder.Records(), viaSpec.Recorder.Records()) {
			t.Errorf("policy %q and its spec %q diverged", name, spec)
		}
		if viaName.Events != viaSpec.Events {
			t.Errorf("policy %q: %d events via name, %d via spec", name, viaName.Events, viaSpec.Events)
		}
	}
	if n < 13 {
		t.Fatalf("only %d legacy aliases round-tripped; expected the full evaluation set", n)
	}
}

// TestHeadlineTablesDeterministicThroughParser regenerates the paper's
// headline and ablation tables (which exercise the legacy names through
// the parser-backed registry) twice at reduced scale: any
// nondeterminism or name/spec mismatch shows up as an output diff.
func TestHeadlineTablesDeterministicThroughParser(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep in -short mode")
	}
	o := sweep.Options{Jobs: 200, Seeds: 1}
	for _, id := range []string{"table2", "table3"} {
		render := func() string {
			tables, err := sweep.Run(id, o)
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, tb := range tables {
				out += tb.CSV()
			}
			return out
		}
		if a, b := render(), render(); a != b {
			t.Errorf("%s output not reproducible through the spec parser:\n--- first\n%s--- second\n%s", id, a, b)
		}
	}
}

// --- Simulation handle ----------------------------------------------------

func TestHandleMatchesSimulate(t *testing.T) {
	wl := dismem.SyntheticWorkload(300, 9)
	direct, err := dismem.Simulate(dismem.Options{Policy: "memaware", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}

	// Same run, advanced in one-hour slices with live queries between.
	h, err := dismem.New(dismem.Options{Policy: "memaware", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if h.Now() != 0 {
		t.Fatalf("clock at %d before first step", h.Now())
	}
	if _, err := h.Result(); err == nil {
		t.Fatal("Result succeeded with pending events")
	}
	last := int64(0)
	for !h.Done() {
		h.RunUntil(last + 3600)
		if h.Now() < last {
			t.Fatalf("clock moved backwards: %d -> %d", last, h.Now())
		}
		last = h.Now()
		if q, r := h.QueueDepth(), h.Running(); q < 0 || r < 0 {
			t.Fatalf("negative live state: queue %d running %d", q, r)
		}
		if u := h.Usage(); u.BusyNodes < 0 || u.BusyNodes > 256 {
			t.Fatalf("busy nodes %d out of range", u.BusyNodes)
		}
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Recorder.Records(), res.Recorder.Records()) {
		t.Fatal("stepped run diverged from Simulate")
	}
	if res.Stopped {
		t.Fatal("completed run marked stopped")
	}
	// Result is idempotent.
	again, err := h.Result()
	if err != nil || again != res {
		t.Fatalf("second Result = (%p, %v), want cached (%p, nil)", again, err, res)
	}
}

func TestHandleStepGranularity(t *testing.T) {
	wl := dismem.SyntheticWorkload(50, 2)
	h, err := dismem.New(dismem.Options{Policy: "easy-local", Machine: dismem.BaselineMachine(256 * 1024), Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for h.Step() {
		steps++
	}
	if steps == 0 {
		t.Fatal("no events fired")
	}
	if uint64(steps) != h.Events() {
		t.Fatalf("stepped %d times but %d events fired", steps, h.Events())
	}
	if !h.Done() {
		t.Fatal("drained handle not done")
	}
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleStopTruncates(t *testing.T) {
	wl := dismem.SyntheticWorkload(500, 4)
	h, err := dismem.New(dismem.Options{Policy: "memaware", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	// Run a prefix, then stop mid-flight.
	h.RunUntil(24 * 3600)
	if h.Done() {
		t.Skip("workload finished within the prefix; nothing to truncate")
	}
	h.Stop()
	if !h.Done() {
		t.Fatal("stopped handle not done")
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("truncated result not marked Stopped")
	}
	if got := res.Report.Jobs() + res.Report.Rejected; got >= 500 {
		t.Fatalf("truncated run recorded %d terminal jobs, want < 500", got)
	}
	if h.Step() {
		t.Fatal("Step made progress after Stop")
	}
}

// --- machine validation ---------------------------------------------------

func TestOptionsMachineValidation(t *testing.T) {
	wl := dismem.SyntheticWorkload(10, 1)
	bad := []dismem.MachineConfig{
		func() dismem.MachineConfig { m := dismem.DefaultMachine(); m.LocalMemMiB = -1; return m }(),
		func() dismem.MachineConfig { m := dismem.DefaultMachine(); m.CoresPerNode = 0; return m }(),
		func() dismem.MachineConfig { m := dismem.DefaultMachine(); m.PoolMiB = -5; return m }(),
		func() dismem.MachineConfig { m := dismem.DefaultMachine(); m.FabricGiBps = 0; return m }(),
		// Partially filled configs are no longer silently swapped for
		// the default machine (the old mc.Racks == 0 heuristic).
		{PoolMiB: 4096},
		{Racks: 16},
	}
	for i, mc := range bad {
		if _, err := dismem.Simulate(dismem.Options{Machine: mc, Policy: "memaware", Workload: wl}); err == nil {
			t.Errorf("case %d: nonsense machine %+v accepted", i, mc)
		}
	}
	// The exact zero value still selects the documented default.
	if _, err := dismem.Simulate(dismem.Options{Policy: "memaware", Workload: wl}); err != nil {
		t.Fatalf("zero machine rejected: %v", err)
	}
}

// --- observers ------------------------------------------------------------

// countingObserver tallies every hook and checks the sample invariants.
type countingObserver struct {
	t          *testing.T
	dispatches int
	terminals  int
	passes     int
	samples    int
	scenarios  int
	lastSample int64
	every      int64
}

func (c *countingObserver) OnScenarioEvent(now int64, ev dismem.ScenarioEvent) {
	c.scenarios++
	if now != ev.At {
		c.t.Errorf("scenario event scheduled for %d applied at %d", ev.At, now)
	}
}

func (c *countingObserver) OnDispatch(now int64, job *dismem.Job, remoteMiB int64, dil float64) {
	c.dispatches++
	if job == nil || dil < 1 || remoteMiB < 0 {
		c.t.Errorf("bad dispatch: job %v remote %d dil %g", job, remoteMiB, dil)
	}
}

func (c *countingObserver) OnTerminate(now int64, rec dismem.JobRecord) {
	c.terminals++
	if !rec.Rejected && rec.End != now {
		c.t.Errorf("terminate at %d for record ending %d", now, rec.End)
	}
}

func (c *countingObserver) OnPassEnd(now int64, dispatched, queueDepth int) {
	c.passes++
	if dispatched < 0 || queueDepth < 0 {
		c.t.Errorf("bad pass: %d dispatched %d queued", dispatched, queueDepth)
	}
}

func (c *countingObserver) OnSample(s dismem.Sample) {
	c.samples++
	if s.Now%c.every != 0 {
		c.t.Errorf("sample at %d not on the %d s grid", s.Now, c.every)
	}
	if s.Now <= c.lastSample {
		c.t.Errorf("samples not strictly advancing: %d after %d", s.Now, c.lastSample)
	}
	c.lastSample = s.Now
}

func TestObserverHooks(t *testing.T) {
	const jobs = 300
	wl := dismem.SyntheticWorkload(jobs, 5)
	obs := &countingObserver{t: t, every: 3600}
	withObs, err := dismem.Simulate(dismem.Options{
		Policy: "memaware", Workload: wl, Observer: obs, SampleEvery: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.terminals != jobs {
		t.Errorf("OnTerminate fired %d times for %d jobs", obs.terminals, jobs)
	}
	r := withObs.Report
	if want := r.Jobs() - r.Killed; obs.dispatches < want {
		t.Errorf("OnDispatch fired %d times, want >= %d", obs.dispatches, want)
	}
	if obs.passes == 0 || obs.samples == 0 {
		t.Errorf("passes %d samples %d, want both > 0", obs.passes, obs.samples)
	}

	// Observation must not change scheduling: same run without the
	// observer yields identical records (sampling adds DES events, so
	// only the event count may differ).
	plain, err := dismem.Simulate(dismem.Options{Policy: "memaware", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Recorder.Records(), withObs.Recorder.Records()) {
		t.Fatal("observer changed simulation outcomes")
	}
	if plain.Report.MakespanSec != withObs.Report.MakespanSec ||
		plain.Report.NodeUtil != withObs.Report.NodeUtil {
		t.Fatal("observer changed report aggregates")
	}
}

func TestObserverStopFromCallback(t *testing.T) {
	wl := dismem.SyntheticWorkload(500, 6)
	var h *dismem.Simulation
	var stopped atomic.Bool
	stopAt := &stopAfterObserver{cut: 12 * 3600, stop: func() { stopped.Store(true); h.Stop() }}
	h, err := dismem.New(dismem.Options{
		Policy: "memaware", Workload: wl, Observer: stopAt, SampleEvery: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stopped.Load() {
		t.Skip("run ended before the stop threshold")
	}
	if !res.Stopped {
		t.Fatal("result of callback-stopped run not marked Stopped")
	}
	if h.Now() != 12*3600 {
		t.Fatalf("stopped at t=%d, want the 12 h sample tick", h.Now())
	}
}

// stopAfterObserver stops the simulation at the first sample at or
// past cut.
type stopAfterObserver struct {
	dismem.NopObserver
	cut  int64
	stop func()
}

func (s *stopAfterObserver) OnSample(smp dismem.Sample) {
	if smp.Now >= s.cut {
		s.stop()
	}
}

// --- registration ---------------------------------------------------------

func TestRegisterPolicyAndPlacer(t *testing.T) {
	if err := dismem.RegisterPolicy("memaware", nil); err == nil {
		t.Error("shadowing a builtin alias accepted")
	}
	if err := dismem.RegisterPolicy("custom-sjf", func() dismem.Scheduler {
		s, err := dismem.ParsePolicy("order=sjf placer=local name=custom-sjf")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range dismem.Policies() {
		if p == "custom-sjf" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered policy missing from Policies()")
	}
	s, err := dismem.NewScheduler("custom-sjf")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "custom-sjf" {
		t.Fatalf("name %q", s.Name())
	}
	wl := dismem.SyntheticWorkload(100, 1)
	if _, err := dismem.Simulate(dismem.Options{Policy: "custom-sjf", Workload: wl}); err != nil {
		t.Fatal(err)
	}

	if err := dismem.RegisterPlacer("prefer-empty", func() dismem.Placer { return preferEmptyPlacer{} }); err != nil {
		t.Fatal(err)
	}
	res, err := dismem.Simulate(dismem.Options{
		Policy:   "order=fcfs backfill=easy placer=prefer-empty",
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobs() == 0 {
		t.Fatal("no jobs ran under the registered placer")
	}
}

// preferEmptyPlacer is a trivial user-defined placer: it delegates to
// the local-only builtin and only renames itself, demonstrating that a
// registered placer composes with the spec grammar.
type preferEmptyPlacer struct{ sched.LocalOnly }

func (preferEmptyPlacer) Name() string { return "prefer-empty" }
