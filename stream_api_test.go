package dismem_test

import (
	"strings"
	"testing"

	"dismem"
)

// TestSourceOptionMatchesWorkloadOption pins the public contract: a
// simulation fed through Options.Source is bit-identical to the same
// trace through Options.Workload.
func TestSourceOptionMatchesWorkloadOption(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 21)
	a, err := dismem.Simulate(dismem.Options{Policy: "memaware", Model: "bandwidth:1,1", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dismem.Simulate(dismem.Options{Policy: "memaware", Model: "bandwidth:1,1", Source: dismem.WorkloadSource(wl)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || *a.Report != *b.Report {
		t.Fatalf("source run differs from workload run:\n%+v\n%+v", a.Report, b.Report)
	}
	ra, rb := a.Recorder.Records(), b.Recorder.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenSourceCapMatchesGeneratedWorkload(t *testing.T) {
	mc := dismem.DefaultMachine()
	cfg := dismem.DefaultGen(0, 5, mc) // unbounded stream config
	src, err := dismem.GenSource(cfg, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 500
	wl, err := dismem.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wl.Jobs {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at %d, want %d jobs", i, len(wl.Jobs))
		}
		if *got != *want {
			t.Fatalf("job %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source produced more than its cap")
	}
}

func TestOptionsWorkloadSourceExclusive(t *testing.T) {
	wl := dismem.SyntheticWorkload(10, 1)
	if _, err := dismem.New(dismem.Options{Policy: "memaware"}); err == nil ||
		!strings.Contains(err.Error(), "nil workload") {
		t.Fatalf("want nil-workload error, got %v", err)
	}
	_, err := dismem.New(dismem.Options{
		Policy: "memaware", Workload: wl, Source: dismem.WorkloadSource(wl),
	})
	if err == nil || !strings.Contains(err.Error(), "choose one") {
		t.Fatalf("want both-set error, got %v", err)
	}
}

func TestBoundedRecordingPublicSurface(t *testing.T) {
	wl := dismem.SyntheticWorkload(500, 9)
	var sb strings.Builder
	res, err := dismem.Simulate(dismem.Options{
		Policy: "memaware", Workload: wl,
		RecordSink: dismem.NewJSONLSink(&sb),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Records() != nil {
		t.Fatal("bounded run must retain no records")
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != res.Report.Jobs()+res.Report.Rejected {
		t.Fatalf("streamed %d record lines, want %d", lines, res.Report.Jobs()+res.Report.Rejected)
	}
	if res.Report.Wait.N() == 0 || res.Report.NodeUtil <= 0 {
		t.Fatalf("bounded report degenerate: %+v", res.Report)
	}
	if fair := res.Recorder.Fairness(); fair.JainWait <= 0 || fair.JainWait > 1 {
		t.Fatalf("bounded fairness degenerate: %+v", fair)
	}
}
