package dismem_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"dismem"
)

// traceOpts is the adversarial configuration for the trace golden
// tests: contention-sensitive model, failures and a scenario timeline,
// so the stream carries every event type — submits, dispatches with
// multi-rack placement, restarts, kills and scenario interventions.
// Tracing is event-driven, so no SampleEvery is armed.
func traceOpts(wl *dismem.Workload, sink dismem.TraceSink) dismem.Options {
	o := forkOpts(wl)
	o.TraceSink = sink
	return o
}

// runTrace runs wl to completion with a JSONL trace sink attached and
// returns the trace bytes.
func runTrace(t *testing.T, wl *dismem.Workload) []byte {
	t.Helper()
	var buf bytes.Buffer
	mustRun(t, mustNew(t, traceOpts(wl, dismem.NewJSONLTraceSink(&buf))))
	if buf.Len() == 0 {
		t.Fatal("run produced an empty trace")
	}
	return buf.Bytes()
}

// TestTraceGoldenDeterminism: the same configuration traces
// byte-identically across runs, every line is a standalone JSON
// object, and the adversarial configuration exercises the full event
// taxonomy.
func TestTraceGoldenDeterminism(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	first := runTrace(t, wl)
	second := runTrace(t, wl)
	if !bytes.Equal(first, second) {
		t.Fatal("two identical runs produced different traces")
	}

	seen := map[string]int{}
	for i, line := range bytes.Split(bytes.TrimSuffix(first, []byte("\n")), []byte("\n")) {
		var ev struct {
			Now  *int64 `json:"now"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Now == nil || ev.Type == "" {
			t.Fatalf("line %d is missing now/type: %s", i+1, line)
		}
		seen[ev.Type]++
	}
	for _, want := range []string{"submit", "dispatch", "terminate", "restart", "scenario"} {
		if seen[want] == 0 {
			t.Fatalf("adversarial run emitted no %q events (got %v)", want, seen)
		}
	}
	if seen["checkpoint"] != 0 || seen["fork"] != 0 {
		t.Fatalf("engine emitted boundary marks into a composing stream: %v", seen)
	}
}

// TestTraceGoldenSourceVsWorkload: the same jobs delivered as a
// materialised Workload and as a streaming Source produce
// byte-identical trace files.
func TestTraceGoldenSourceVsWorkload(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	slice := runTrace(t, wl)

	var buf bytes.Buffer
	o := traceOpts(nil, dismem.NewJSONLTraceSink(&buf))
	o.Source = dismem.WorkloadSource(wl)
	mustRun(t, mustNew(t, o))
	if !bytes.Equal(slice, buf.Bytes()) {
		t.Fatal("streamed-source trace differs from the workload-slice trace")
	}
}

// TestTraceGoldenResumeComposition: interrupt a run mid-flight, fork
// from the checkpoint with a fresh sink, and the parent's trace plus
// the fork's trace concatenate to exactly the clean run's bytes — the
// reason the engine never emits checkpoint/fork boundary marks into a
// composing stream.
func TestTraceGoldenResumeComposition(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	clean := runTrace(t, wl)

	var prefix bytes.Buffer
	h := mustNew(t, traceOpts(wl, dismem.NewJSONLTraceSink(&prefix)))
	h.RunUntil(50000)
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if _, err := h.Result(); err != nil { // closes (flushes) the prefix sink
		t.Fatal(err)
	}

	var suffix bytes.Buffer
	mustRun(t, mustFork(t, cp, dismem.ForkOptions{TraceSink: dismem.NewJSONLTraceSink(&suffix)}))

	joined := append(append([]byte{}, prefix.Bytes()...), suffix.Bytes()...)
	if !bytes.Equal(clean, joined) {
		t.Fatalf("prefix (%d B) + suffix (%d B) trace != clean trace (%d B)",
			prefix.Len(), suffix.Len(), len(clean))
	}
}

// TestTraceGoldenDurableRoundTrip: the composition property survives
// the durable checkpoint file format.
func TestTraceGoldenDurableRoundTrip(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	clean := runTrace(t, wl)

	var prefix bytes.Buffer
	h := mustNew(t, traceOpts(wl, dismem.NewJSONLTraceSink(&prefix)))
	h.RunUntil(50000)
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.dmckpt")
	if err := dismem.WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := dismem.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var suffix bytes.Buffer
	mustRun(t, mustFork(t, loaded, dismem.ForkOptions{TraceSink: dismem.NewJSONLTraceSink(&suffix)}))

	joined := append(append([]byte{}, prefix.Bytes()...), suffix.Bytes()...)
	if !bytes.Equal(clean, joined) {
		t.Fatalf("durable round trip broke trace composition: prefix %d B + suffix %d B vs clean %d B",
			prefix.Len(), suffix.Len(), len(clean))
	}
}

// perfettoDoc is the structural subset of the Chrome trace-event
// format the validation below inspects.
type perfettoDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
		ID   string `json:"id"`
	} `json:"traceEvents"`
}

// TestTraceGoldenPerfetto: the Perfetto export is deterministic, is
// one well-formed JSON document, and on a completed run every async
// span that opens also closes (b/e balance per span id).
func TestTraceGoldenPerfetto(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	render := func() []byte {
		var buf bytes.Buffer
		mustRun(t, mustNew(t, traceOpts(wl, dismem.NewPerfettoTraceSink(&buf))))
		return buf.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("two identical runs produced different Perfetto documents")
	}

	var doc perfettoDoc
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("Perfetto output is not one valid JSON document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Perfetto document has no traceEvents")
	}
	opens, instants := map[string]int{}, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			opens[ev.ID]++
		case "e":
			opens[ev.ID]--
			if opens[ev.ID] < 0 {
				t.Fatalf("span %q closed more often than it opened", ev.ID)
			}
		case "i":
			instants++
		case "M":
		default:
			t.Fatalf("unexpected phase %q in event %+v", ev.Ph, ev)
		}
	}
	for id, n := range opens {
		if n != 0 {
			t.Fatalf("span %q left open on a completed run (%d unmatched opens)", id, n)
		}
	}
	if instants == 0 {
		t.Fatal("scenario/restart instants missing from the cluster track")
	}
}

// closeCountTraceSink counts Add and Close calls, for pinning the
// engine's close-exactly-once discipline.
type closeCountTraceSink struct {
	events int
	closes int
}

func (s *closeCountTraceSink) Add(dismem.TraceEvent) { s.events++ }
func (s *closeCountTraceSink) Close() error          { s.closes++; return nil }

// TestTraceSinkClosedOncePerTerminalPath: the engine closes the
// configured trace sink exactly once on every terminal path — run to
// completion, truncation by Stop (even with Result called repeatedly),
// and a forked future running out.
func TestTraceSinkClosedOncePerTerminalPath(t *testing.T) {
	wl := dismem.SyntheticWorkload(400, 1)

	t.Run("run-to-completion", func(t *testing.T) {
		sink := &closeCountTraceSink{}
		mustRun(t, mustNew(t, traceOpts(wl, sink)))
		if sink.closes != 1 {
			t.Fatalf("sink closed %d times, want 1", sink.closes)
		}
		if sink.events == 0 {
			t.Fatal("sink saw no events")
		}
	})

	t.Run("stop-then-result", func(t *testing.T) {
		sink := &closeCountTraceSink{}
		h := mustNew(t, traceOpts(wl, sink))
		h.RunUntil(30000)
		h.Stop()
		for i := 0; i < 2; i++ { // Result is idempotent on the close
			if _, err := h.Result(); err != nil {
				t.Fatal(err)
			}
		}
		if sink.closes != 1 {
			t.Fatalf("sink closed %d times, want 1", sink.closes)
		}
	})

	t.Run("forked-future", func(t *testing.T) {
		h := mustNew(t, traceOpts(wl, nil))
		h.RunUntil(30000)
		cp, err := h.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		h.Stop()
		if _, err := h.Result(); err != nil {
			t.Fatal(err)
		}
		sink := &closeCountTraceSink{}
		mustRun(t, mustFork(t, cp, dismem.ForkOptions{TraceSink: sink}))
		if sink.closes != 1 {
			t.Fatalf("fork closed the sink %d times, want 1", sink.closes)
		}
		if sink.events == 0 {
			t.Fatal("fork traced no events")
		}
	})
}
